#include "index/neighborhood_index.h"

#include <algorithm>
#include <cassert>

#include "util/serde.h"

namespace amber {

namespace {
constexpr uint32_t kNbrIndexMagic = 0x414D424E;  // "AMBN"
constexpr uint32_t kNbrIndexVersion = 1;

bool LexLess(std::span<const EdgeTypeId> a, std::span<const EdgeTypeId> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}
}  // namespace

void NeighborhoodIndex::BuildChildren(
    const std::vector<std::pair<std::span<const EdgeTypeId>, VertexId>>&
        groups,
    size_t lo, size_t hi, size_t depth, DirIndex* dir) {
  size_t i = lo;
  while (i < hi) {
    const EdgeTypeId t = groups[i].first[depth];
    size_t j = i;
    while (j < hi && groups[j].first[depth] == t) ++j;

    const uint32_t node_idx = static_cast<uint32_t>(dir->nodes.size());
    dir->nodes.push_back(Node{t, 0, 0, 0});

    // Groups whose set ends exactly at this node come first (a proper
    // prefix sorts before its extensions).
    uint32_t list_begin = static_cast<uint32_t>(dir->pool.size());
    size_t k = i;
    while (k < j && groups[k].first.size() == depth + 1) {
      dir->pool.push_back(groups[k].second);
      ++k;
    }
    dir->nodes[node_idx].list_begin = list_begin;
    dir->nodes[node_idx].list_end = static_cast<uint32_t>(dir->pool.size());

    BuildChildren(groups, k, j, depth + 1, dir);
    dir->nodes[node_idx].subtree_end =
        static_cast<uint32_t>(dir->nodes.size());
    i = j;
  }
}

NeighborhoodIndex NeighborhoodIndex::Build(const Multigraph& g) {
  NeighborhoodIndex index;
  const size_t num_vertices = g.NumVertices();

  for (Direction d : {Direction::kIn, Direction::kOut}) {
    DirIndex& dir = index.dirs_[static_cast<int>(d)];
    dir.node_offsets.assign(num_vertices + 1, 0);
    dir.pool_offsets.assign(num_vertices + 1, 0);

    std::vector<std::pair<std::span<const EdgeTypeId>, VertexId>> groups;
    for (VertexId v = 0; v < num_vertices; ++v) {
      groups.clear();
      const size_t n = g.GroupCount(v, d);
      groups.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        GroupView view = g.Group(v, d, i);
        groups.emplace_back(view.types, view.neighbor);
      }
      // Order multi-edges lexicographically by their (sorted) type sequence
      // so prefix sharing in the trie falls out of a linear scan.
      std::sort(groups.begin(), groups.end(),
                [](const auto& a, const auto& b) {
                  if (LexLess(a.first, b.first)) return true;
                  if (LexLess(b.first, a.first)) return false;
                  return a.second < b.second;
                });
      BuildChildren(groups, 0, groups.size(), 0, &dir);
      dir.node_offsets[v + 1] = dir.nodes.size();
      dir.pool_offsets[v + 1] = dir.pool.size();
    }
  }
  return index;
}

void NeighborhoodIndex::SupersetNeighbors(VertexId v, Direction d,
                                          std::span<const EdgeTypeId> types,
                                          std::vector<VertexId>* out,
                                          Scratch* scratch) const {
  const DirIndex& dir = dirs_[static_cast<int>(d)];
  if (v + 1 >= dir.node_offsets.size()) return;
  const size_t out_start = out->size();

  if (types.empty()) {
    // Every neighbour on this side: the vertex's whole inverted-list range.
    out->insert(out->end(), dir.pool.begin() + dir.pool_offsets[v],
                dir.pool.begin() + dir.pool_offsets[v + 1]);
    std::sort(out->begin() + out_start, out->end());
    return;
  }

  const uint32_t begin = static_cast<uint32_t>(dir.node_offsets[v]);
  const uint32_t end = static_cast<uint32_t>(dir.node_offsets[v + 1]);

  // Iterative DFS over (node, matched query prefix length). Sibling walks
  // stop early once a label exceeds the next unmatched query type.
  Scratch local;
  std::vector<Scratch::Frame>& stack =
      (scratch != nullptr ? scratch->frames : local.frames);
  stack.clear();
  if (begin < end) stack.push_back(Scratch::Frame{begin, end, 0});

  while (!stack.empty()) {
    Scratch::Frame f = stack.back();
    stack.pop_back();

    uint32_t n = f.node;
    uint32_t qi = f.qi;
    while (n < f.limit) {
      const Node& node = dir.nodes[n];
      if (qi < types.size() && node.type > types[qi]) {
        break;  // this sibling and all later ones are > types[qi]: prune
      }
      uint32_t qn = qi;
      if (qi < types.size() && node.type == types[qi]) qn = qi + 1;

      if (qn == types.size()) {
        // Whole subtree matches; its inverted lists are contiguous.
        const Node& last = dir.nodes[node.subtree_end - 1];
        out->insert(out->end(), dir.pool.begin() + node.list_begin,
                    dir.pool.begin() + last.list_end);
      } else if (node.subtree_end > n + 1) {
        stack.push_back(Scratch::Frame{n + 1, node.subtree_end, qn});
      }
      n = node.subtree_end;
    }
  }
  std::sort(out->begin() + out_start, out->end());
}

bool NeighborhoodIndex::Contains(VertexId v, Direction d,
                                 std::span<const EdgeTypeId> types,
                                 VertexId neighbor, Scratch* scratch) const {
  const DirIndex& dir = dirs_[static_cast<int>(d)];
  if (v + 1 >= dir.node_offsets.size()) return false;

  if (types.empty()) {
    // Any adjacency qualifies: scan the vertex's inverted-list range (it is
    // contiguous but not globally sorted, so no binary search here).
    const auto lo = dir.pool.begin() + dir.pool_offsets[v];
    const auto hi = dir.pool.begin() + dir.pool_offsets[v + 1];
    return std::find(lo, hi, neighbor) != hi;
  }

  const uint32_t begin = static_cast<uint32_t>(dir.node_offsets[v]);
  const uint32_t end = static_cast<uint32_t>(dir.node_offsets[v + 1]);

  // Same pruned DFS as SupersetNeighbors. Once every query type is matched
  // the subtree is accepted; `neighbor` is then binary-searched in each of
  // the subtree's per-node inverted lists (each list is sorted).
  Scratch local;
  std::vector<Scratch::Frame>& stack =
      (scratch != nullptr ? scratch->frames : local.frames);
  stack.clear();
  if (begin < end) stack.push_back(Scratch::Frame{begin, end, 0});

  while (!stack.empty()) {
    Scratch::Frame f = stack.back();
    stack.pop_back();

    uint32_t n = f.node;
    uint32_t qi = f.qi;
    while (n < f.limit) {
      const Node& node = dir.nodes[n];
      if (qi < types.size() && node.type > types[qi]) break;
      uint32_t qn = qi;
      if (qi < types.size() && node.type == types[qi]) qn = qi + 1;

      if (qn == types.size()) {
        for (uint32_t m = n; m < node.subtree_end; ++m) {
          const Node& sub = dir.nodes[m];
          const auto lo = dir.pool.begin() + sub.list_begin;
          const auto hi = dir.pool.begin() + sub.list_end;
          if (std::binary_search(lo, hi, neighbor)) return true;
        }
      } else if (node.subtree_end > n + 1) {
        stack.push_back(Scratch::Frame{n + 1, node.subtree_end, qn});
      }
      n = node.subtree_end;
    }
  }
  return false;
}

uint64_t NeighborhoodIndex::ByteSize() const {
  uint64_t total = 0;
  for (const DirIndex& dir : dirs_) {
    total += dir.node_offsets.capacity() * sizeof(uint64_t);
    total += dir.pool_offsets.capacity() * sizeof(uint64_t);
    total += dir.nodes.capacity() * sizeof(Node);
    total += dir.pool.capacity() * sizeof(VertexId);
  }
  return total;
}

void NeighborhoodIndex::Save(std::ostream& os) const {
  serde::WriteHeader(os, kNbrIndexMagic, kNbrIndexVersion);
  for (const DirIndex& dir : dirs_) {
    serde::WriteVector(os, dir.node_offsets);
    serde::WriteVector(os, dir.pool_offsets);
    serde::WritePod<uint64_t>(os, dir.nodes.size());
    for (const Node& n : dir.nodes) serde::WritePod(os, n);
    serde::WriteVector(os, dir.pool);
  }
}

Status NeighborhoodIndex::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(
      serde::CheckHeader(is, kNbrIndexMagic, kNbrIndexVersion));
  for (DirIndex& dir : dirs_) {
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &dir.node_offsets));
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &dir.pool_offsets));
    uint64_t n = 0;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
    dir.nodes.resize(n);
    for (Node& node : dir.nodes) {
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &node));
    }
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &dir.pool));
  }
  return Status::OK();
}

}  // namespace amber
