#include "index/neighborhood_index.h"

#include <algorithm>
#include <cassert>

#include "util/serde.h"
#include "util/thread_pool.h"

namespace amber {

namespace {
constexpr uint32_t kNbrIndexMagic = 0x414D424E;  // "AMBN"
constexpr uint32_t kNbrIndexVersion = 1;

// AMF section ids (namespace 0x40xx).
constexpr uint32_t kAmfNbrDirBase = 0x4010;  // + 0x10 per direction

// Vertices per parallel build chunk. Fixed (not derived from the thread
// count) so that the chunk boundaries — and therefore the merged arrays —
// are identical for every num_threads, including the serial build.
constexpr size_t kBuildChunkVertices = 1024;

bool LexLess(std::span<const EdgeTypeId> a, std::span<const EdgeTypeId> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}
}  // namespace

void NeighborhoodIndex::BuildChildren(
    const std::vector<std::pair<std::span<const EdgeTypeId>, VertexId>>&
        groups,
    size_t lo, size_t hi, size_t depth, std::vector<Node>* nodes,
    std::vector<VertexId>* pool) {
  size_t i = lo;
  while (i < hi) {
    const EdgeTypeId t = groups[i].first[depth];
    size_t j = i;
    while (j < hi && groups[j].first[depth] == t) ++j;

    const uint32_t node_idx = static_cast<uint32_t>(nodes->size());
    nodes->push_back(Node{t, 0, 0, 0});

    // Groups whose set ends exactly at this node come first (a proper
    // prefix sorts before its extensions).
    uint32_t list_begin = static_cast<uint32_t>(pool->size());
    size_t k = i;
    while (k < j && groups[k].first.size() == depth + 1) {
      pool->push_back(groups[k].second);
      ++k;
    }
    (*nodes)[node_idx].list_begin = list_begin;
    (*nodes)[node_idx].list_end = static_cast<uint32_t>(pool->size());

    BuildChildren(groups, k, j, depth + 1, nodes, pool);
    (*nodes)[node_idx].subtree_end = static_cast<uint32_t>(nodes->size());
    i = j;
  }
}

NeighborhoodIndex NeighborhoodIndex::Build(const Multigraph& g,
                                           ThreadPool* pool) {
  NeighborhoodIndex index;
  const size_t num_vertices = g.NumVertices();
  const size_t num_chunks =
      (num_vertices + kBuildChunkVertices - 1) / kBuildChunkVertices;

  for (Direction d : {Direction::kIn, Direction::kOut}) {
    DirIndex& dir = index.dirs_[static_cast<int>(d)];

    // Phase 1: build each vertex chunk into local arrays. Node indices and
    // list offsets inside a chunk are chunk-relative; the merge rebases
    // them. Chunks only read the (immutable) multigraph, so they can run
    // on any thread.
    struct ChunkOut {
      std::vector<Node> nodes;
      std::vector<VertexId> pool;
      std::vector<uint32_t> node_counts;  // per vertex in the chunk
      std::vector<uint32_t> pool_counts;
    };
    std::vector<ChunkOut> chunks(num_chunks);
    auto build_chunk = [&g, &chunks, d, num_vertices](size_t c) {
      ChunkOut& out = chunks[c];
      const size_t begin = c * kBuildChunkVertices;
      const size_t end =
          std::min(num_vertices, begin + kBuildChunkVertices);
      std::vector<std::pair<std::span<const EdgeTypeId>, VertexId>> groups;
      for (size_t v = begin; v < end; ++v) {
        groups.clear();
        const size_t n = g.GroupCount(static_cast<VertexId>(v), d);
        groups.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          GroupView view = g.Group(static_cast<VertexId>(v), d, i);
          groups.emplace_back(view.types, view.neighbor);
        }
        // Order multi-edges lexicographically by their (sorted) type
        // sequence so prefix sharing in the trie falls out of a linear
        // scan.
        std::sort(groups.begin(), groups.end(),
                  [](const auto& a, const auto& b) {
                    if (LexLess(a.first, b.first)) return true;
                    if (LexLess(b.first, a.first)) return false;
                    return a.second < b.second;
                  });
        const size_t nodes_before = out.nodes.size();
        const size_t pool_before = out.pool.size();
        BuildChildren(groups, 0, groups.size(), 0, &out.nodes, &out.pool);
        out.node_counts.push_back(
            static_cast<uint32_t>(out.nodes.size() - nodes_before));
        out.pool_counts.push_back(
            static_cast<uint32_t>(out.pool.size() - pool_before));
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(num_chunks, build_chunk);
    } else {
      for (size_t c = 0; c < num_chunks; ++c) build_chunk(c);
    }

    // Phase 2: in-order concatenation with offset fixups — equivalent to
    // having built every vertex sequentially into one array.
    uint64_t total_nodes = 0, total_pool = 0;
    for (const ChunkOut& c : chunks) {
      total_nodes += c.nodes.size();
      total_pool += c.pool.size();
    }
    std::vector<uint64_t> node_offsets(num_vertices + 1, 0);
    std::vector<uint64_t> pool_offsets(num_vertices + 1, 0);
    std::vector<Node> nodes;
    nodes.reserve(total_nodes);
    std::vector<VertexId> pool_ids;
    pool_ids.reserve(total_pool);
    size_t v = 0;
    for (const ChunkOut& c : chunks) {
      const uint32_t node_base = static_cast<uint32_t>(nodes.size());
      const uint32_t pool_base = static_cast<uint32_t>(pool_ids.size());
      for (Node n : c.nodes) {
        n.subtree_end += node_base;
        n.list_begin += pool_base;
        n.list_end += pool_base;
        nodes.push_back(n);
      }
      pool_ids.insert(pool_ids.end(), c.pool.begin(), c.pool.end());
      for (size_t i = 0; i < c.node_counts.size(); ++i, ++v) {
        node_offsets[v + 1] = node_offsets[v] + c.node_counts[i];
        pool_offsets[v + 1] = pool_offsets[v] + c.pool_counts[i];
      }
    }
    dir.node_offsets = std::move(node_offsets);
    dir.pool_offsets = std::move(pool_offsets);
    dir.nodes = std::move(nodes);
    dir.pool = std::move(pool_ids);
  }
  return index;
}

void NeighborhoodIndex::SupersetNeighbors(VertexId v, Direction d,
                                          std::span<const EdgeTypeId> types,
                                          std::vector<VertexId>* out,
                                          Scratch* scratch) const {
  const DirIndex& dir = dirs_[static_cast<int>(d)];
  if (v + 1 >= dir.node_offsets.size()) return;
  const size_t out_start = out->size();

  if (types.empty()) {
    // Every neighbour on this side: the vertex's whole inverted-list range.
    out->insert(out->end(), dir.pool.begin() + dir.pool_offsets[v],
                dir.pool.begin() + dir.pool_offsets[v + 1]);
    std::sort(out->begin() + out_start, out->end());
    return;
  }

  const uint32_t begin = static_cast<uint32_t>(dir.node_offsets[v]);
  const uint32_t end = static_cast<uint32_t>(dir.node_offsets[v + 1]);

  // Iterative DFS over (node, matched query prefix length). Sibling walks
  // stop early once a label exceeds the next unmatched query type.
  Scratch local;
  std::vector<Scratch::Frame>& stack =
      (scratch != nullptr ? scratch->frames : local.frames);
  stack.clear();
  if (begin < end) stack.push_back(Scratch::Frame{begin, end, 0});

  while (!stack.empty()) {
    Scratch::Frame f = stack.back();
    stack.pop_back();

    uint32_t n = f.node;
    uint32_t qi = f.qi;
    while (n < f.limit) {
      const Node& node = dir.nodes[n];
      if (qi < types.size() && node.type > types[qi]) {
        break;  // this sibling and all later ones are > types[qi]: prune
      }
      uint32_t qn = qi;
      if (qi < types.size() && node.type == types[qi]) qn = qi + 1;

      if (qn == types.size()) {
        // Whole subtree matches; its inverted lists are contiguous.
        const Node& last = dir.nodes[node.subtree_end - 1];
        out->insert(out->end(), dir.pool.begin() + node.list_begin,
                    dir.pool.begin() + last.list_end);
      } else if (node.subtree_end > n + 1) {
        stack.push_back(Scratch::Frame{n + 1, node.subtree_end, qn});
      }
      n = node.subtree_end;
    }
  }
  std::sort(out->begin() + out_start, out->end());
}

bool NeighborhoodIndex::Contains(VertexId v, Direction d,
                                 std::span<const EdgeTypeId> types,
                                 VertexId neighbor, Scratch* scratch) const {
  const DirIndex& dir = dirs_[static_cast<int>(d)];
  if (v + 1 >= dir.node_offsets.size()) return false;

  if (types.empty()) {
    // Any adjacency qualifies: scan the vertex's inverted-list range (it is
    // contiguous but not globally sorted, so no binary search here).
    const VertexId* lo = dir.pool.begin() + dir.pool_offsets[v];
    const VertexId* hi = dir.pool.begin() + dir.pool_offsets[v + 1];
    return std::find(lo, hi, neighbor) != hi;
  }

  const uint32_t begin = static_cast<uint32_t>(dir.node_offsets[v]);
  const uint32_t end = static_cast<uint32_t>(dir.node_offsets[v + 1]);

  // Same pruned DFS as SupersetNeighbors. Once every query type is matched
  // the subtree is accepted; `neighbor` is then binary-searched in each of
  // the subtree's per-node inverted lists (each list is sorted).
  Scratch local;
  std::vector<Scratch::Frame>& stack =
      (scratch != nullptr ? scratch->frames : local.frames);
  stack.clear();
  if (begin < end) stack.push_back(Scratch::Frame{begin, end, 0});

  while (!stack.empty()) {
    Scratch::Frame f = stack.back();
    stack.pop_back();

    uint32_t n = f.node;
    uint32_t qi = f.qi;
    while (n < f.limit) {
      const Node& node = dir.nodes[n];
      if (qi < types.size() && node.type > types[qi]) break;
      uint32_t qn = qi;
      if (qi < types.size() && node.type == types[qi]) qn = qi + 1;

      if (qn == types.size()) {
        for (uint32_t m = n; m < node.subtree_end; ++m) {
          const Node& sub = dir.nodes[m];
          const VertexId* lo = dir.pool.begin() + sub.list_begin;
          const VertexId* hi = dir.pool.begin() + sub.list_end;
          if (std::binary_search(lo, hi, neighbor)) return true;
        }
      } else if (node.subtree_end > n + 1) {
        stack.push_back(Scratch::Frame{n + 1, node.subtree_end, qn});
      }
      n = node.subtree_end;
    }
  }
  return false;
}

uint64_t NeighborhoodIndex::ByteSize() const {
  uint64_t total = 0;
  for (const DirIndex& dir : dirs_) {
    total += dir.node_offsets.ByteSize();
    total += dir.pool_offsets.ByteSize();
    total += dir.nodes.ByteSize();
    total += dir.pool.ByteSize();
  }
  return total;
}

void NeighborhoodIndex::Save(std::ostream& os) const {
  serde::WriteHeader(os, kNbrIndexMagic, kNbrIndexVersion);
  for (const DirIndex& dir : dirs_) {
    serde::WriteSpan(os, dir.node_offsets.span());
    serde::WriteSpan(os, dir.pool_offsets.span());
    serde::WritePod<uint64_t>(os, dir.nodes.size());
    for (const Node& n : dir.nodes) serde::WritePod(os, n);
    serde::WriteSpan(os, dir.pool.span());
  }
}

Status NeighborhoodIndex::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(
      serde::CheckHeader(is, kNbrIndexMagic, kNbrIndexVersion));
  for (DirIndex& dir : dirs_) {
    std::vector<uint64_t> node_offsets, pool_offsets;
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &node_offsets));
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &pool_offsets));
    uint64_t n = 0;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
    if (n > serde::kMaxPayloadBytes / sizeof(Node)) {
      return Status::Corruption("implausible trie node count");
    }
    // push_back growth: forged counts on truncated streams fail at the
    // first missing node instead of over-allocating.
    std::vector<Node> nodes;
    for (uint64_t i = 0; i < n; ++i) {
      Node node;
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &node));
      nodes.push_back(node);
    }
    std::vector<VertexId> pool;
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &pool));
    dir.node_offsets = std::move(node_offsets);
    dir.pool_offsets = std::move(pool_offsets);
    dir.nodes = std::move(nodes);
    dir.pool = std::move(pool);
  }
  return Status::OK();
}

void NeighborhoodIndex::SaveAmf(amf::Writer* w) const {
  for (int d = 0; d < 2; ++d) {
    const uint32_t base = kAmfNbrDirBase + d * 0x10;
    w->AddArray(base + 0, dirs_[d].node_offsets.span());
    w->AddArray(base + 1, dirs_[d].pool_offsets.span());
    w->AddArray(base + 2, dirs_[d].nodes.span());
    w->AddArray(base + 3, dirs_[d].pool.span());
  }
}

Status NeighborhoodIndex::LoadAmf(const amf::Reader& r) {
  for (int d = 0; d < 2; ++d) {
    const uint32_t base = kAmfNbrDirBase + d * 0x10;
    AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> node_offsets,
                           r.Array<uint64_t>(base + 0));
    AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> pool_offsets,
                           r.Array<uint64_t>(base + 1));
    AMBER_ASSIGN_OR_RETURN(std::span<const Node> nodes,
                           r.Array<Node>(base + 2));
    AMBER_ASSIGN_OR_RETURN(std::span<const VertexId> pool,
                           r.Array<VertexId>(base + 3));
    if (node_offsets.size() != pool_offsets.size()) {
      return Status::Corruption("neighborhood offset tables malformed");
    }
    AMBER_RETURN_IF_ERROR(
        amf::ValidateOffsets(node_offsets, nodes.size(),
                             "neighborhood node"));
    AMBER_RETURN_IF_ERROR(
        amf::ValidateOffsets(pool_offsets, pool.size(),
                             "neighborhood pool"));
    // Trie invariants the DFS relies on: subtree_end strictly advances
    // (or the walk loops forever) and stays in range; inverted-list ranges
    // index the pool; pool entries are vertex ids.
    const uint64_t num_vertices = node_offsets.size() - 1;
    for (size_t i = 0; i < nodes.size(); ++i) {
      const Node& n = nodes[i];
      if (n.subtree_end <= i || n.subtree_end > nodes.size() ||
          n.list_begin > n.list_end || n.list_end > pool.size()) {
        return Status::Corruption("neighborhood trie node out of range");
      }
    }
    for (VertexId v : pool) {
      if (v >= num_vertices) {
        return Status::Corruption("neighborhood pool entry out of range");
      }
    }
    dirs_[d].node_offsets = ArrayRef<uint64_t>::Borrowed(node_offsets);
    dirs_[d].pool_offsets = ArrayRef<uint64_t>::Borrowed(pool_offsets);
    dirs_[d].nodes = ArrayRef<Node>::Borrowed(nodes);
    dirs_[d].pool = ArrayRef<VertexId>::Borrowed(pool);
  }
  return Status::OK();
}

}  // namespace amber
