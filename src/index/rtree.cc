#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/serde.h"

namespace amber {

namespace {
constexpr uint32_t kRTreeMagic = 0x414D4252;  // "AMBR"
constexpr uint32_t kRTreeVersion = 1;

// AMF section ids (namespace 0x30xx).
constexpr uint32_t kAmfRTreeMeta = 0x3000;
constexpr uint32_t kAmfRTreePoints = 0x3001;
constexpr uint32_t kAmfRTreeNodes = 0x3002;
constexpr uint32_t kAmfRTreeEntries = 0x3003;
constexpr uint32_t kAmfRTreeChildPool = 0x3004;

struct RTreeMetaPod {
  uint32_t root;
  uint32_t reserved;
};
}  // namespace

struct SynopsisRTree::Bulk {
  std::span<const Synopsis> points;
  std::vector<Node> nodes;
  std::vector<uint32_t> entries;
  std::vector<uint32_t> child_pool;

  uint32_t BuildNode(std::span<uint32_t> ids, int depth,
                     const Options& options) {
    assert(!ids.empty());
    Node node;
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      node.mbr_min[i] = std::numeric_limits<int32_t>::max();
      node.mbr_max[i] = std::numeric_limits<int32_t>::min();
    }
    node.entry_begin = static_cast<uint32_t>(entries.size());

    if (ids.size() <= options.leaf_capacity) {
      for (uint32_t id : ids) {
        entries.push_back(id);
        const Synopsis& p = points[id];
        for (int i = 0; i < Synopsis::kNumFields; ++i) {
          node.mbr_min[i] = std::min(node.mbr_min[i], p.f[i]);
          node.mbr_max[i] = std::max(node.mbr_max[i], p.f[i]);
        }
      }
      node.entry_end = static_cast<uint32_t>(entries.size());
      node.children_begin = 0;
      node.children_count = 0;
      nodes.push_back(node);
      return static_cast<uint32_t>(nodes.size() - 1);
    }

    // Partition along one dimension per level (round-robin), into up to
    // `fanout` equal slices: a sort-tile-recursive style pack.
    const int dim = depth % Synopsis::kNumFields;
    std::sort(ids.begin(), ids.end(), [this, dim](uint32_t a, uint32_t b) {
      if (points[a].f[dim] != points[b].f[dim]) {
        return points[a].f[dim] < points[b].f[dim];
      }
      return a < b;
    });

    const size_t slices =
        std::min<size_t>(options.fanout,
                         (ids.size() + options.leaf_capacity - 1) /
                             options.leaf_capacity);
    const size_t per_slice = (ids.size() + slices - 1) / slices;

    std::vector<uint32_t> children;
    for (size_t begin = 0; begin < ids.size(); begin += per_slice) {
      size_t end = std::min(ids.size(), begin + per_slice);
      children.push_back(
          BuildNode(ids.subspan(begin, end - begin), depth + 1, options));
    }

    for (uint32_t child : children) {
      const Node& c = nodes[child];
      for (int i = 0; i < Synopsis::kNumFields; ++i) {
        node.mbr_min[i] = std::min(node.mbr_min[i], c.mbr_min[i]);
        node.mbr_max[i] = std::max(node.mbr_max[i], c.mbr_max[i]);
      }
    }
    node.entry_end = static_cast<uint32_t>(entries.size());
    node.children_begin = static_cast<uint32_t>(child_pool.size());
    node.children_count = static_cast<uint32_t>(children.size());
    child_pool.insert(child_pool.end(), children.begin(), children.end());
    nodes.push_back(node);
    return static_cast<uint32_t>(nodes.size() - 1);
  }
};

SynopsisRTree SynopsisRTree::Build(std::span<const Synopsis> points,
                                   const Options& options) {
  SynopsisRTree tree;
  tree.points_ = std::vector<Synopsis>(points.begin(), points.end());
  if (points.empty()) return tree;

  std::vector<uint32_t> ids(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) ids[i] = i;
  Bulk bulk;
  bulk.points = tree.points_.span();
  bulk.entries.reserve(points.size());
  tree.root_ = bulk.BuildNode(std::span<uint32_t>(ids), 0, options);
  tree.nodes_ = std::move(bulk.nodes);
  tree.entries_ = std::move(bulk.entries);
  tree.child_pool_ = std::move(bulk.child_pool);
  return tree;
}

void SynopsisRTree::CollectRange(uint32_t begin, uint32_t end,
                                 std::vector<uint32_t>* out) const {
  out->insert(out->end(), entries_.begin() + begin, entries_.begin() + end);
}

void SynopsisRTree::QueryDominating(const Synopsis& q,
                                    std::vector<uint32_t>* out) const {
  const size_t out_start = out->size();
  if (nodes_.empty()) return;

  std::vector<uint32_t> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();

    bool prune = false;
    bool all_inside = true;
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      if (q.f[i] > node.mbr_max[i]) {
        prune = true;
        break;
      }
      if (q.f[i] > node.mbr_min[i]) all_inside = false;
    }
    if (prune) continue;
    if (all_inside) {
      // Every point in the subtree dominates q.
      CollectRange(node.entry_begin, node.entry_end, out);
      continue;
    }
    if (node.children_count == 0) {
      for (uint32_t e = node.entry_begin; e < node.entry_end; ++e) {
        if (points_[entries_[e]].Dominates(q)) out->push_back(entries_[e]);
      }
      continue;
    }
    for (uint32_t c = 0; c < node.children_count; ++c) {
      stack.push_back(child_pool_[node.children_begin + c]);
    }
  }
  std::sort(out->begin() + out_start, out->end());
}

void SynopsisRTree::Save(std::ostream& os) const {
  serde::WriteHeader(os, kRTreeMagic, kRTreeVersion);
  serde::WritePod<uint64_t>(os, points_.size());
  for (const Synopsis& p : points_) {
    for (int32_t v : p.f) serde::WritePod(os, v);
  }
  serde::WritePod<uint64_t>(os, nodes_.size());
  for (const Node& n : nodes_) {
    serde::WritePod(os, n);
  }
  serde::WriteSpan(os, entries_.span());
  serde::WriteSpan(os, child_pool_.span());
  serde::WritePod(os, root_);
}

Status SynopsisRTree::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(serde::CheckHeader(is, kRTreeMagic, kRTreeVersion));
  uint64_t n = 0;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
  if (n > serde::kMaxPayloadBytes / sizeof(Synopsis)) {
    return Status::Corruption("implausible point count");
  }
  // push_back growth: forged counts on truncated streams fail at the first
  // missing element instead of over-allocating the claimed size.
  std::vector<Synopsis> points;
  for (uint64_t i = 0; i < n; ++i) {
    Synopsis p;
    for (int32_t& v : p.f) {
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v));
    }
    points.push_back(p);
  }
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
  if (n > serde::kMaxPayloadBytes / sizeof(Node)) {
    return Status::Corruption("implausible node count");
  }
  std::vector<Node> nodes;
  for (uint64_t i = 0; i < n; ++i) {
    Node node;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &node));
    nodes.push_back(node);
  }
  std::vector<uint32_t> entries;
  std::vector<uint32_t> child_pool;
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &entries));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &child_pool));
  points_ = std::move(points);
  nodes_ = std::move(nodes);
  entries_ = std::move(entries);
  child_pool_ = std::move(child_pool);
  return serde::ReadPod(is, &root_);
}

void SynopsisRTree::SaveAmf(amf::Writer* w) const {
  RTreeMetaPod meta{root_, 0};
  w->AddPod(kAmfRTreeMeta, meta);
  w->AddArray(kAmfRTreePoints, points_.span());
  w->AddArray(kAmfRTreeNodes, nodes_.span());
  w->AddArray(kAmfRTreeEntries, entries_.span());
  w->AddArray(kAmfRTreeChildPool, child_pool_.span());
}

Status SynopsisRTree::LoadAmf(const amf::Reader& r) {
  RTreeMetaPod meta;
  AMBER_RETURN_IF_ERROR(r.Pod(kAmfRTreeMeta, &meta));
  AMBER_ASSIGN_OR_RETURN(std::span<const Synopsis> points,
                         r.Array<Synopsis>(kAmfRTreePoints));
  AMBER_ASSIGN_OR_RETURN(std::span<const Node> nodes,
                         r.Array<Node>(kAmfRTreeNodes));
  AMBER_ASSIGN_OR_RETURN(std::span<const uint32_t> entries,
                         r.Array<uint32_t>(kAmfRTreeEntries));
  AMBER_ASSIGN_OR_RETURN(std::span<const uint32_t> child_pool,
                         r.Array<uint32_t>(kAmfRTreeChildPool));
  if (!nodes.empty() && meta.root >= nodes.size()) {
    return Status::Corruption("rtree root out of range");
  }
  if (entries.size() != points.size()) {
    return Status::Corruption("rtree entries/points size mismatch");
  }
  // Structural invariants the dominance walk relies on: entry/child
  // ranges index their pools, entries are point ids, and every child id is
  // below its parent (the bulk loader emits children first), which rules
  // out traversal cycles.
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.entry_begin > n.entry_end || n.entry_end > entries.size() ||
        static_cast<uint64_t>(n.children_begin) + n.children_count >
            child_pool.size()) {
      return Status::Corruption("rtree node out of range");
    }
    for (uint32_t c = 0; c < n.children_count; ++c) {
      if (child_pool[n.children_begin + c] >= i) {
        return Status::Corruption("rtree child link not topological");
      }
    }
  }
  for (uint32_t e : entries) {
    if (e >= points.size()) {
      return Status::Corruption("rtree entry out of range");
    }
  }
  root_ = meta.root;
  points_ = ArrayRef<Synopsis>::Borrowed(points);
  nodes_ = ArrayRef<Node>::Borrowed(nodes);
  entries_ = ArrayRef<uint32_t>::Borrowed(entries);
  child_pool_ = ArrayRef<uint32_t>::Borrowed(child_pool);
  return Status::OK();
}

}  // namespace amber
