#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/serde.h"

namespace amber {

namespace {
constexpr uint32_t kRTreeMagic = 0x414D4252;  // "AMBR"
constexpr uint32_t kRTreeVersion = 1;
}  // namespace

SynopsisRTree SynopsisRTree::Build(std::span<const Synopsis> points,
                                   const Options& options) {
  SynopsisRTree tree;
  tree.points_.assign(points.begin(), points.end());
  if (points.empty()) return tree;

  std::vector<uint32_t> ids(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) ids[i] = i;
  tree.entries_.reserve(points.size());
  tree.root_ = tree.BuildNode(std::span<uint32_t>(ids), 0, options);
  return tree;
}

uint32_t SynopsisRTree::BuildNode(std::span<uint32_t> ids, int depth,
                                  const Options& options) {
  assert(!ids.empty());
  Node node;
  for (int i = 0; i < Synopsis::kNumFields; ++i) {
    node.mbr_min[i] = std::numeric_limits<int32_t>::max();
    node.mbr_max[i] = std::numeric_limits<int32_t>::min();
  }
  node.entry_begin = static_cast<uint32_t>(entries_.size());

  if (ids.size() <= options.leaf_capacity) {
    for (uint32_t id : ids) {
      entries_.push_back(id);
      const Synopsis& p = points_[id];
      for (int i = 0; i < Synopsis::kNumFields; ++i) {
        node.mbr_min[i] = std::min(node.mbr_min[i], p.f[i]);
        node.mbr_max[i] = std::max(node.mbr_max[i], p.f[i]);
      }
    }
    node.entry_end = static_cast<uint32_t>(entries_.size());
    node.children_begin = 0;
    node.children_count = 0;
    nodes_.push_back(node);
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  // Partition along one dimension per level (round-robin), into up to
  // `fanout` equal slices: a sort-tile-recursive style pack.
  const int dim = depth % Synopsis::kNumFields;
  std::sort(ids.begin(), ids.end(), [this, dim](uint32_t a, uint32_t b) {
    if (points_[a].f[dim] != points_[b].f[dim]) {
      return points_[a].f[dim] < points_[b].f[dim];
    }
    return a < b;
  });

  const size_t slices =
      std::min<size_t>(options.fanout,
                       (ids.size() + options.leaf_capacity - 1) /
                           options.leaf_capacity);
  const size_t per_slice = (ids.size() + slices - 1) / slices;

  std::vector<uint32_t> children;
  for (size_t begin = 0; begin < ids.size(); begin += per_slice) {
    size_t end = std::min(ids.size(), begin + per_slice);
    children.push_back(
        BuildNode(ids.subspan(begin, end - begin), depth + 1, options));
  }

  for (uint32_t child : children) {
    const Node& c = nodes_[child];
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      node.mbr_min[i] = std::min(node.mbr_min[i], c.mbr_min[i]);
      node.mbr_max[i] = std::max(node.mbr_max[i], c.mbr_max[i]);
    }
  }
  node.entry_end = static_cast<uint32_t>(entries_.size());
  node.children_begin = static_cast<uint32_t>(child_pool_.size());
  node.children_count = static_cast<uint32_t>(children.size());
  child_pool_.insert(child_pool_.end(), children.begin(), children.end());
  nodes_.push_back(node);
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void SynopsisRTree::CollectRange(uint32_t begin, uint32_t end,
                                 std::vector<uint32_t>* out) const {
  out->insert(out->end(), entries_.begin() + begin, entries_.begin() + end);
}

void SynopsisRTree::QueryDominating(const Synopsis& q,
                                    std::vector<uint32_t>* out) const {
  const size_t out_start = out->size();
  if (nodes_.empty()) return;

  std::vector<uint32_t> stack;
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();

    bool prune = false;
    bool all_inside = true;
    for (int i = 0; i < Synopsis::kNumFields; ++i) {
      if (q.f[i] > node.mbr_max[i]) {
        prune = true;
        break;
      }
      if (q.f[i] > node.mbr_min[i]) all_inside = false;
    }
    if (prune) continue;
    if (all_inside) {
      // Every point in the subtree dominates q.
      CollectRange(node.entry_begin, node.entry_end, out);
      continue;
    }
    if (node.children_count == 0) {
      for (uint32_t e = node.entry_begin; e < node.entry_end; ++e) {
        if (points_[entries_[e]].Dominates(q)) out->push_back(entries_[e]);
      }
      continue;
    }
    for (uint32_t c = 0; c < node.children_count; ++c) {
      stack.push_back(child_pool_[node.children_begin + c]);
    }
  }
  std::sort(out->begin() + out_start, out->end());
}

void SynopsisRTree::Save(std::ostream& os) const {
  serde::WriteHeader(os, kRTreeMagic, kRTreeVersion);
  serde::WritePod<uint64_t>(os, points_.size());
  for (const Synopsis& p : points_) {
    for (int32_t v : p.f) serde::WritePod(os, v);
  }
  serde::WritePod<uint64_t>(os, nodes_.size());
  for (const Node& n : nodes_) {
    serde::WritePod(os, n);
  }
  serde::WriteVector(os, entries_);
  serde::WriteVector(os, child_pool_);
  serde::WritePod(os, root_);
}

Status SynopsisRTree::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(serde::CheckHeader(is, kRTreeMagic, kRTreeVersion));
  uint64_t n = 0;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
  points_.resize(n);
  for (Synopsis& p : points_) {
    for (int32_t& v : p.f) {
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v));
    }
  }
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
  nodes_.resize(n);
  for (Node& node : nodes_) {
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &node));
  }
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &entries_));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &child_pool_));
  return serde::ReadPod(is, &root_);
}

}  // namespace amber
