// Deterministic fault injection for the serving stack (docs/ARCHITECTURE.md,
// "Failure semantics").
//
// Named sites on the hot request path (engine execution, parallel chunk
// dispatch, artifact open, service execution) consult the process-global
// FaultInjector. By default every site is a no-op costing one relaxed
// atomic load — the hook is compiled in ALWAYS, including release builds,
// so the code paths tests exercise under injected failure are byte-for-byte
// the paths production runs. Tests (and the bench fault sweep) arm sites by
// name with a trigger schedule:
//
//   fail_nth      fire exactly on the Nth visit (1-based)
//   fail_every    fire on every Kth visit
//   probability   fire with probability p per visit, from a seeded RNG —
//                 "random" chaos schedules replay exactly given the seed
//
// A firing site can inject an error Status (kUnavailable transients,
// kResourceExhausted allocation pressure, kIOError artifact read faults...)
// and/or latency padding (a slow-down fault: code == kOk with a delay).
// Sites report visit ("hit") and firing counts so tests can pin schedules.
//
// Thread-safety: Arm/Disarm/Reset and Inject may be called concurrently
// from any thread. The disarmed fast path is wait-free.

#ifndef AMBER_UTIL_FAULT_INJECTOR_H_
#define AMBER_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/status.h"

namespace amber {

/// The names of every instrumented site, kept in one place so tests and
/// the sites themselves can never drift apart (docs/ARCHITECTURE.md holds
/// the authoritative table).
namespace faults {
/// QueryService::Query, before each execution attempt (retried).
inline constexpr const char kServiceExecute[] = "service.execute";
/// AmberEngine::Execute, before planning/matching.
inline constexpr const char kEngineExecute[] = "engine.execute";
/// parallel_exec worker, before each claimed chunk runs.
inline constexpr const char kParallelChunk[] = "parallel.chunk";
/// QueryService::QueryStream, before each page handoff to the PageSink.
inline constexpr const char kServiceStream[] = "service.stream";
/// HttpServer, before each response/page write to a client socket — a
/// firing behaves exactly like a mid-response transport failure (the
/// connection is aborted and the request's token trips).
inline constexpr const char kServerWrite[] = "server.write";
/// MappedFile::Open, before the mmap (artifact read fault).
inline constexpr const char kMmapOpen[] = "mmap.open";
/// amf::Reader::Open, before header/table validation.
inline constexpr const char kAmfOpen[] = "amf.open";
}  // namespace faults

/// What an armed site does when its schedule fires.
struct FaultSpec {
  /// Status code of the injected error. kOk injects no error — combined
  /// with `delay` this is a pure slow-down fault.
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";

  // Trigger schedule: the site fires on a visit when ANY armed trigger
  // matches. All zero = never fires (counting-only site).
  uint64_t fail_nth = 0;    ///< fire exactly on the Nth visit (1-based)
  uint64_t fail_every = 0;  ///< fire on every Kth visit
  double probability = 0.0; ///< fire with probability p per visit
  uint64_t seed = 1;        ///< RNG seed for `probability` (replayable)

  /// Stop firing after this many firings (0 = unlimited). fail_nth sites
  /// implicitly fire once.
  uint64_t max_fires = 0;

  /// Latency padding applied when the site fires, before any error is
  /// returned (a firing with code == kOk is a slow-down only).
  std::chrono::milliseconds delay{0};
};

/// \brief The process-global named-site fault injector. See file comment.
class FaultInjector {
 public:
  /// The one injector every site consults.
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters for) `site` with `spec`.
  void Arm(const std::string& site, const FaultSpec& spec);

  /// Disarms `site`; its counters stay readable until Reset().
  void Disarm(const std::string& site);

  /// Disarms every site and clears all counters.
  void Reset();

  /// Visits of `site` while it was armed / firings it produced.
  uint64_t Hits(const std::string& site) const;
  uint64_t Fires(const std::string& site) const;

  /// The site hook: returns OK instantly when nothing is armed; otherwise
  /// consults `site`'s schedule, applies its delay, and returns the
  /// injected error (or OK). Sites propagate the returned Status exactly
  /// like an organic failure of the operation they guard.
  Status Inject(const char* site) {
    if (armed_sites_.load(std::memory_order_relaxed) == 0) {
      return Status::OK();
    }
    return InjectSlow(site);
  }

 private:
  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
    uint64_t rng_state = 1;  // splitmix64, seeded from spec.seed
  };

  Status InjectSlow(const char* site);

  std::atomic<int> armed_sites_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// RAII arm/disarm for tests: the site is disarmed on scope exit even when
/// an assertion fails out of the block.
class ScopedFault {
 public:
  ScopedFault(std::string site, const FaultSpec& spec)
      : site_(std::move(site)) {
    FaultInjector::Global().Arm(site_, spec);
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace amber

#endif  // AMBER_UTIL_FAULT_INJECTOR_H_
