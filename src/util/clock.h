// Wall-clock helpers: Stopwatch for timing and Deadline for cooperative
// cancellation of long-running query evaluation (the paper's 60 s per-query
// budget in Section 7.2).

#ifndef AMBER_UTIL_CLOCK_H_
#define AMBER_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace amber {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  std::chrono::microseconds Elapsed() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_);
  }

  double ElapsedSeconds() const {
    return static_cast<double>(Elapsed().count()) / 1e6;
  }

  double ElapsedMillis() const {
    return static_cast<double>(Elapsed().count()) / 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A point in time after which work should stop.
///
/// Deadline::Infinite() never expires. Checking is cheap (one clock read);
/// callers in tight loops should check every few hundred iterations.
class Deadline {
 public:
  /// A deadline that never expires.
  static Deadline Infinite() { return Deadline(); }

  /// A deadline `budget` from now; a non-positive budget never expires.
  static Deadline After(std::chrono::milliseconds budget) {
    if (budget.count() <= 0) return Infinite();
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + budget;
    return d;
  }

  bool infinite() const { return infinite_; }

  bool Expired() const {
    if (infinite_) return false;
    return Clock::now() >= when_;
  }

  /// Default-constructed deadlines never expire.
  Deadline() = default;

 private:
  using Clock = std::chrono::steady_clock;

  bool infinite_ = true;
  Clock::time_point when_{};
};

}  // namespace amber

#endif  // AMBER_UTIL_CLOCK_H_
