// Small string helpers (trim/split/prefix tests) shared by the N-Triples
// and SPARQL parsers, the writers, and the benchmark config parsing. No
// paper counterpart; pure substrate.

#ifndef AMBER_UTIL_STRING_UTIL_H_
#define AMBER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace amber {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `delim`; empty pieces are kept.
std::vector<std::string_view> StrSplit(std::string_view s, char delim);

/// True if `c` is ASCII whitespace (space, tab, CR, LF, FF, VT).
bool IsSpaceAscii(char c);

/// Escapes a string for use inside an N-Triples literal or IRI: backslash,
/// quote, newline, carriage return and tab are escaped.
std::string EscapeNTriples(std::string_view s);

/// Reverses EscapeNTriples, also decoding \uXXXX and \UXXXXXXXX sequences to
/// UTF-8. Returns false on a malformed escape.
bool UnescapeNTriples(std::string_view s, std::string* out);

/// Appends the UTF-8 encoding of `code_point` to `out`. Returns false if the
/// code point is out of Unicode range.
bool AppendUtf8(uint32_t code_point, std::string* out);

/// Renders `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Renders a byte count as a human-friendly string ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace amber

#endif  // AMBER_UTIL_STRING_UTIL_H_
