// A fixed-size thread pool used by the optional parallel query mode
// (the paper's "parallel processing version" future-work item), by
// parallel index construction, and — as a long-lived pool shared across
// requests — by the serving runtime (server/query_service.h).
//
// Sharing caveat: Wait() and ParallelFor() are whole-pool barriers (they
// wait for EVERY outstanding task, not just the caller's). Callers that
// share one pool across concurrent producers must track their own task
// completion (core/parallel_exec.cc uses a per-query std::latch) and use
// only Submit().

#ifndef AMBER_UTIL_THREAD_POOL_H_
#define AMBER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amber {

/// \brief Fixed-size worker pool with a blocking Wait().
///
/// Tasks are arbitrary std::function<void()>. Submission after Shutdown() is
/// a no-op. The destructor drains outstanding tasks.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns false if the pool is shut down.
  bool Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
      queue_.push(std::move(task));
      ++outstanding_;
    }
    work_cv_.notify_one();
    return true;
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Stops accepting tasks and joins the workers after draining the queue.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    size_t shards = std::min(n, num_threads() * 4);
    size_t chunk = (n + shards - 1) / shards;
    for (size_t begin = 0; begin < n; begin += chunk) {
      size_t end = std::min(n, begin + chunk);
      Submit([begin, end, &fn] {
        for (size_t i = begin; i < end; ++i) fn(i);
      });
    }
    Wait();
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (shutdown_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace amber

#endif  // AMBER_UTIL_THREAD_POOL_H_
