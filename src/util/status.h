// Status and Result<T>: the error-handling model used throughout AMbER.
//
// Following the idiom of production database codebases (RocksDB, Arrow),
// recoverable failures are reported through Status / Result<T> return values
// rather than exceptions. Exceptions are reserved for programming errors
// (assertion failures) only.

#ifndef AMBER_UTIL_STATUS_H_
#define AMBER_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace amber {

/// Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kUnimplemented = 4,
  kTimeout = 5,
  kIOError = 6,
  kResourceExhausted = 7,
  kInternal = 8,
  /// A transient failure: the operation did not happen but retrying it may
  /// succeed (the retry policy of server/query_service.h keys on this).
  kUnavailable = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Maps a StatusCode onto the HTTP status the transport answers with —
/// the ONE error path of server/http_server.cc, exhaustively unit-tested
/// (tests/util_test.cc) so a new code can never silently fall through.
/// Caller errors are 4xx (kInvalidArgument → 400, kNotFound → 404,
/// kResourceExhausted → 429); server-side conditions are 5xx
/// (kUnavailable → 503 retryable, kTimeout → 504, kUnimplemented → 501,
/// kCorruption / kIOError / kInternal → 500).
constexpr int StatusCodeToHttp(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kCorruption:
      return 500;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kTimeout:
      return 504;
    case StatusCode::kIOError:
      return 500;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kInternal:
      return 500;
    case StatusCode::kUnavailable:
      return 503;
  }
  return 500;
}

/// \brief Outcome of an operation that can fail.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy (two words plus a string for errors).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Timeout(std::string_view msg) {
    return Status(StatusCode::kTimeout, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }

  /// Constructs an error status with an arbitrary code (fault injection
  /// builds statuses from configured codes). `code` must not be kOk.
  static Status FromCode(StatusCode code, std::string_view msg) {
    return Status(code, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Result<T> is the value-returning companion of Status. Accessing the value
/// of an errored Result is a programming error (checked by assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error: `return Status::NotFound(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors out of functions that return Status.
#define AMBER_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::amber::Status _amber_status = (expr);    \
    if (!_amber_status.ok()) return _amber_status; \
  } while (false)

#define AMBER_CONCAT_IMPL(a, b) a##b
#define AMBER_CONCAT(a, b) AMBER_CONCAT_IMPL(a, b)

// Evaluates a Result-returning expression; on success binds the value to
// `lhs`, on failure propagates the Status.
#define AMBER_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  AMBER_ASSIGN_OR_RETURN_IMPL(AMBER_CONCAT(_amber_result_, __LINE__), lhs, \
                              rexpr)

#define AMBER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace amber

#endif  // AMBER_UTIL_STATUS_H_
