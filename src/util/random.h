// Deterministic pseudo-random utilities used by the synthetic data and
// workload generators. Everything is seeded explicitly so that datasets,
// workloads and property tests are reproducible bit-for-bit across runs.

#ifndef AMBER_UTIL_RANDOM_H_
#define AMBER_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace amber {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Used instead of
/// std::mt19937 for speed and for a stable cross-platform stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> Sample(size_t n, size_t k) {
    assert(k <= n);
    // Partial Fisher–Yates over an index vector; fine at generator scales.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + Uniform(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

 private:
  uint64_t state_;
};

/// \brief Zipf-distributed sampler over {0, ..., n-1}.
///
/// Rank r is drawn with probability proportional to 1 / (r+1)^s. Built once
/// (O(n) table of cumulative weights) and sampled by binary search; the
/// generators use it to skew predicate usage the way DBpedia does.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cdf_(n) {
    assert(n > 0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  }

  size_t Sample(Rng* rng) const {
    double u = rng->NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace amber

#endif  // AMBER_UTIL_RANDOM_H_
