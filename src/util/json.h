// A hand-rolled JSON reader/writer for the wire layer (server/wire.h) —
// no third-party dependencies, matching the repo's status-based error
// model.
//
// Two halves:
//
//   * Writer: an append-only serializer with automatic comma/colon
//     management. Values nest through Begin/End calls; strings are
//     escaped per RFC 8259 (control characters, quote, backslash as
//     \uXXXX / two-char escapes). Doubles print shortest-round-trip
//     (std::to_chars), so serialization is deterministic — the wire
//     byte-identity tests depend on it.
//
//   * Parse: a recursive-descent parser into a small Value DOM. It is
//     hardened for untrusted network input: depth-capped (stack safety),
//     total-input bounded by the caller (the HTTP layer caps request
//     bytes), full \uXXXX unescaping including surrogate pairs, and it
//     NEVER crashes on malformed bytes — every failure is a
//     Status::InvalidArgument (fuzzed in tests/json_test.cc).
//
// Numbers: JSON has one number type; Value keeps the double plus exact
// int64/uint64 views when the literal was integral and in range, so
// options fields (offsets, limits, budgets) round-trip exactly.

#ifndef AMBER_UTIL_JSON_H_
#define AMBER_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace amber {
namespace json {

/// Appends `s` to `*out` as a quoted, escaped JSON string literal.
void AppendQuoted(std::string* out, std::string_view s);

/// Appends the shortest round-trip decimal form of `d` (NaN/Inf, which
/// JSON cannot represent, serialize as null).
void AppendDouble(std::string* out, double d);

/// \brief Append-only JSON serializer with automatic comma management.
///
/// Usage errors (a value where a key is required, unbalanced End calls)
/// are programming errors, checked by assert in debug builds; the writer
/// is for trusted serialization code, not untrusted input.
class Writer {
 public:
  Writer() { out_.reserve(256); }

  void BeginObject() {
    ValuePrefix();
    out_.push_back('{');
    stack_.push_back(Frame{/*object=*/true, /*first=*/true});
  }
  void EndObject() {
    out_.push_back('}');
    stack_.pop_back();
  }
  void BeginArray() {
    ValuePrefix();
    out_.push_back('[');
    stack_.push_back(Frame{/*object=*/false, /*first=*/true});
  }
  void EndArray() {
    out_.push_back(']');
    stack_.pop_back();
  }

  /// Writes `"key":` inside an object (the next call supplies the value).
  void Key(std::string_view key) {
    Frame& f = stack_.back();
    if (!f.first) out_.push_back(',');
    f.first = false;
    AppendQuoted(&out_, key);
    out_.push_back(':');
  }

  void Null() {
    ValuePrefix();
    out_ += "null";
  }
  void Bool(bool b) {
    ValuePrefix();
    out_ += b ? "true" : "false";
  }
  void Int(int64_t v) {
    ValuePrefix();
    out_ += std::to_string(v);
  }
  void UInt(uint64_t v) {
    ValuePrefix();
    out_ += std::to_string(v);
  }
  void Double(double v) {
    ValuePrefix();
    AppendDouble(&out_, v);
  }
  void String(std::string_view s) {
    ValuePrefix();
    AppendQuoted(&out_, s);
  }

  /// Convenience: Key + value in one call.
  void KV(std::string_view key, std::string_view v) { Key(key), String(v); }
  void KV(std::string_view key, const char* v) { Key(key), String(v); }
  void KV(std::string_view key, bool v) { Key(key), Bool(v); }
  void KV(std::string_view key, uint64_t v) { Key(key), UInt(v); }
  void KV(std::string_view key, int64_t v) { Key(key), Int(v); }
  void KV(std::string_view key, double v) { Key(key), Double(v); }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  struct Frame {
    bool object;
    bool first;
  };

  // Comma before array elements; object values follow a Key() which
  // already placed the separator.
  void ValuePrefix() {
    if (stack_.empty()) return;
    Frame& f = stack_.back();
    if (f.object) return;
    if (!f.first) out_.push_back(',');
    f.first = false;
  }

  std::string out_;
  std::vector<Frame> stack_;
};

/// \brief One parsed JSON value (a small owning DOM).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  /// Always set for numbers. The exact integer views are set only when
  /// the literal was integral and representable.
  double num_v = 0.0;
  int64_t int_v = 0;
  uint64_t uint_v = 0;
  bool is_int = false;   // int_v valid
  bool is_uint = false;  // uint_v valid
  std::string str_v;
  /// Insertion order preserved (duplicate keys are a parse error).
  std::vector<std::pair<std::string, Value>> object;
  std::vector<Value> array;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; null when absent or not an object.
  const Value* Find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` as ONE JSON document (leading/trailing whitespace
/// allowed, trailing garbage rejected). Every malformed input returns
/// Status::InvalidArgument; nesting beyond `max_depth` is rejected.
Result<Value> Parse(std::string_view text, size_t max_depth = 64);

}  // namespace json
}  // namespace amber

#endif  // AMBER_UTIL_JSON_H_
