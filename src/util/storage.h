// ArrayRef<T>: the owned-or-borrowed storage cell behind every persisted
// array in the offline-stage artifacts (multigraph CSR, index pools,
// dictionary blobs).
//
// Built structures own their data (a std::vector moved in at Build() time);
// structures restored from an AMF artifact borrow theirs (a span into the
// mmap'ed file, kept alive by the engine holding the mapping). Everything
// after Build()/Load() is read-only — that immutability is what makes the
// two modes interchangeable behind one const-span interface, so the query
// path never knows which one it is running against.

#ifndef AMBER_UTIL_STORAGE_H_
#define AMBER_UTIL_STORAGE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace amber {

/// \brief Immutable array that either owns a vector or borrows a span.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Takes ownership of `v` (the Build() path).
  ArrayRef(std::vector<T> v)  // NOLINT(runtime/explicit)
      : owned_(std::move(v)), view_(owned_) {}

  /// Borrows `s`; the caller guarantees the backing memory outlives this
  /// ArrayRef (the mmap'ed-artifact path).
  static ArrayRef Borrowed(std::span<const T> s) {
    ArrayRef r;
    r.view_ = s;
    return r;
  }

  // Copying an owned ArrayRef deep-copies the data; copying a borrowed one
  // shares the view (both aliases of the same immutable mapping).
  ArrayRef(const ArrayRef& o) { *this = o; }
  ArrayRef& operator=(const ArrayRef& o) {
    if (this == &o) return *this;
    if (o.is_owned()) {
      owned_ = o.owned_;
      view_ = owned_;
    } else {
      owned_.clear();
      owned_.shrink_to_fit();
      view_ = o.view_;
    }
    return *this;
  }

  // Moves transfer the vector buffer, so the view stays valid.
  ArrayRef(ArrayRef&& o) noexcept
      : owned_(std::move(o.owned_)), view_(o.view_) {
    o.view_ = {};
    o.owned_.clear();
  }
  ArrayRef& operator=(ArrayRef&& o) noexcept {
    if (this == &o) return *this;
    owned_ = std::move(o.owned_);
    view_ = o.view_;
    o.view_ = {};
    o.owned_.clear();
    return *this;
  }

  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T* data() const { return view_.data(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  const T* begin() const { return view_.data(); }
  const T* end() const { return view_.data() + view_.size(); }
  std::span<const T> span() const { return view_; }

  /// True when this ArrayRef owns its buffer (false for views into a
  /// mapped artifact).
  bool is_owned() const {
    return !owned_.empty() && view_.data() == owned_.data();
  }

  /// Bytes of payload (owned heap or mapped file alike).
  uint64_t ByteSize() const {
    return static_cast<uint64_t>(view_.size()) * sizeof(T);
  }

  /// Content equality, regardless of ownership mode.
  friend bool operator==(const ArrayRef& a, const ArrayRef& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
};

}  // namespace amber

#endif  // AMBER_UTIL_STORAGE_H_
