#include "util/status.h"

namespace amber {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace amber
