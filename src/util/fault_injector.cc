#include "util/fault_injector.h"

#include <thread>

namespace amber {

namespace {

/// splitmix64 step: a tiny, seedable generator with a full-period state
/// walk — identical schedules replay from identical seeds on every
/// platform (no distribution/engine implementation divergence).
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();  // never destroyed
  return *injector;
}

void FaultInjector::Arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
  }
  state.spec = spec;
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
  state.rng_state = spec.seed ? spec.seed : 1;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : sites_) {
    if (state.armed) armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  sites_.clear();
}

uint64_t FaultInjector::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

Status FaultInjector::InjectSlow(const char* site) {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::chrono::milliseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return Status::OK();
    SiteState& state = it->second;
    const FaultSpec& spec = state.spec;
    ++state.hits;

    bool fire = false;
    if (spec.fail_nth != 0 && state.hits == spec.fail_nth) fire = true;
    if (spec.fail_every != 0 && state.hits % spec.fail_every == 0) {
      fire = true;
    }
    if (spec.probability > 0.0) {
      // 53-bit mantissa draw in [0, 1): deterministic given the seed.
      const double draw =
          static_cast<double>(NextRandom(&state.rng_state) >> 11) *
          (1.0 / 9007199254740992.0);
      if (draw < spec.probability) fire = true;
    }
    if (fire && spec.max_fires != 0 && state.fires >= spec.max_fires) {
      fire = false;
    }
    if (!fire) return Status::OK();
    ++state.fires;
    code = spec.code;
    delay = spec.delay;
    if (code != StatusCode::kOk) {
      message = spec.message;
      message += " [site ";
      message += site;
      message += "]";
    }
  }
  // Sleep outside the lock: a slow-down fault must not serialize every
  // other site behind this one.
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  if (code == StatusCode::kOk) return Status::OK();
  return Status::FromCode(code, message);
}

}  // namespace amber
