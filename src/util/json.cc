#include "util/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace amber {
namespace json {

namespace {

const char kHexDigits[] = "0123456789abcdef";

}  // namespace

void AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          *out += "\\u00";
          out->push_back(kHexDigits[c >> 4]);
          out->push_back(kHexDigits[c & 0xF]);
        } else {
          // Bytes >= 0x80 pass through untouched: the wire carries UTF-8
          // (or whatever byte soup the dataset's tokens hold) verbatim.
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double d) {
  if (!std::isfinite(d)) {
    *out += "null";
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  assert(ec == std::errc());
  (void)ec;
  out->append(buf, ptr);
}

namespace {

/// Recursive-descent parser over a bounded string_view. All entry points
/// return false on malformed input and set `error_`; the caller converts
/// to Status::InvalidArgument with the byte offset.
class Parser {
 public:
  Parser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Value> Run() {
    Value v;
    SkipWs();
    if (!ParseValue(&v, 0)) return Fail();
    SkipWs();
    if (pos_ != text_.size()) {
      error_ = "trailing bytes after JSON document";
      return Fail();
    }
    return v;
  }

 private:
  Status Fail() const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + error_);
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Expect(char c, const char* what) {
    if (Eof() || Peek() != c) {
      error_ = what;
      return false;
    }
    ++pos_;
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      error_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(Value* out, size_t depth) {
    if (depth > max_depth_) {
      error_ = "nesting deeper than max_depth";
      return false;
    }
    if (Eof()) {
      error_ = "unexpected end of input";
      return false;
    }
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str_v);
      case 't':
        out->kind = Value::Kind::kBool;
        out->bool_v = true;
        return Literal("true");
      case 'f':
        out->kind = Value::Kind::kBool;
        out->bool_v = false;
        return Literal("false");
      case 'n':
        out->kind = Value::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out, size_t depth) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (Eof() || Peek() != '"') {
        error_ = "expected object key string";
        return false;
      }
      if (!ParseString(&key)) return false;
      for (const auto& [k, v] : out->object) {
        if (k == key) {
          // Duplicate keys are ambiguous on a wire protocol; reject
          // instead of silently keeping one.
          error_ = "duplicate object key";
          return false;
        }
      }
      SkipWs();
      if (!Expect(':', "expected ':' after object key")) return false;
      SkipWs();
      Value v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Eof()) {
        error_ = "unterminated object";
        return false;
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool ParseArray(Value* out, size_t depth) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      Value v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (Eof()) {
        error_ = "unterminated array";
        return false;
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool HexQuad(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      error_ = "truncated \\u escape";
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        error_ = "invalid hex digit in \\u escape";
        return false;
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (Eof()) {
        error_ = "unterminated string";
        return false;
      }
      unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        error_ = "unescaped control character in string";
        return false;
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (Eof()) {
        error_ = "truncated escape";
        return false;
      }
      char esc = Peek();
      ++pos_;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp;
          if (!HexQuad(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              error_ = "unpaired high surrogate";
              return false;
            }
            pos_ += 2;
            uint32_t low;
            if (!HexQuad(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              error_ = "invalid low surrogate";
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            error_ = "unpaired low surrogate";
            return false;
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          error_ = "invalid escape character";
          return false;
      }
    }
  }

  bool ParseNumber(Value* out) {
    const size_t begin = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    if (Eof() || Peek() < '0' || Peek() > '9') {
      error_ = "invalid number";
      return false;
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!Eof() && Peek() == '.') {
      integral = false;
      ++pos_;
      if (Eof() || Peek() < '0' || Peek() > '9') {
        error_ = "digits required after decimal point";
        return false;
      }
      while (!Eof() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || Peek() < '0' || Peek() > '9') {
        error_ = "digits required in exponent";
        return false;
      }
      while (!Eof() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string_view lit = text_.substr(begin, pos_ - begin);
    out->kind = Value::Kind::kNumber;
    auto [dptr, dec] =
        std::from_chars(lit.data(), lit.data() + lit.size(), out->num_v);
    if (dec == std::errc::result_out_of_range) {
      // Magnitude overflow clamps to ±inf which JSON cannot round-trip;
      // keep the clamped double (callers bound-check anyway).
      out->num_v = lit.front() == '-' ? -HUGE_VAL : HUGE_VAL;
    } else if (dec != std::errc() || dptr != lit.data() + lit.size()) {
      error_ = "invalid number";
      return false;
    }
    if (integral) {
      {
        auto [p, ec] =
            std::from_chars(lit.data(), lit.data() + lit.size(), out->int_v);
        out->is_int = ec == std::errc() && p == lit.data() + lit.size();
      }
      if (lit.front() != '-') {
        auto [p, ec] =
            std::from_chars(lit.data(), lit.data() + lit.size(), out->uint_v);
        out->is_uint = ec == std::errc() && p == lit.data() + lit.size();
      }
    }
    return true;
  }

  std::string_view text_;
  const size_t max_depth_;
  size_t pos_ = 0;
  const char* error_ = "malformed JSON";
};

}  // namespace

Result<Value> Parse(std::string_view text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace json
}  // namespace amber
