#include "util/string_util.h"

#include <cstdio>
#include <cstdint>

namespace amber {

bool IsSpaceAscii(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpaceAscii(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpaceAscii(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> StrSplit(std::string_view s, char delim) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(s.substr(start));
      break;
    }
    pieces.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string EscapeNTriples(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;  // surrogate range
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0x10FFFF) {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    return false;
  }
  return true;
}

namespace {

bool ParseHex(std::string_view s, uint32_t* value) {
  uint32_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *value = v;
  return true;
}

}  // namespace

bool UnescapeNTriples(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= s.size()) return false;
    char e = s[++i];
    switch (e) {
      case 't':
        out->push_back('\t');
        break;
      case 'b':
        out->push_back('\b');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 'f':
        out->push_back('\f');
        break;
      case '"':
        out->push_back('"');
        break;
      case '\'':
        out->push_back('\'');
        break;
      case '\\':
        out->push_back('\\');
        break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        uint32_t cp = 0;
        if (!ParseHex(s.substr(i + 1, 4), &cp)) return false;
        if (!AppendUtf8(cp, out)) return false;
        i += 4;
        break;
      }
      case 'U': {
        if (i + 8 >= s.size()) return false;
        uint32_t cp = 0;
        if (!ParseHex(s.substr(i + 1, 8), &cp)) return false;
        if (!AppendUtf8(cp, out)) return false;
        i += 8;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return buf;
}

}  // namespace amber
