// Sorted-set intersection kernels for the matching hot path (Section 5).
//
// The online stage spends most of its time intersecting sorted vertex-id
// lists coming out of the A and N indexes. Following the worst-case-optimal
// join literature (Ngo et al.; EmptyHeaded, SIGMOD'16), the kernels here are
// engineered around two ideas:
//
//   * *Galloping* (exponential search): when one list is much longer than
//     the other, advancing through the long list by doubling steps costs
//     O(short * log(long/short)) instead of O(short + long).
//   * *Writing into caller-owned storage*: every kernel appends into or
//     rewrites a caller-provided buffer, so a caller that reuses buffers
//     (the Matcher's scratch arena) performs zero heap allocations in
//     steady state.
//
// All inputs must be sorted ascending and duplicate-free; outputs preserve
// that invariant.

#ifndef AMBER_UTIL_INTERSECT_H_
#define AMBER_UTIL_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace amber {

/// Counters the kernels report so ExecStats can expose how the adaptive
/// strategies behaved (docs/ARCHITECTURE.md, "The matching hot path").
struct IntersectCounters {
  /// Elements of the longer list skipped over by exponential search.
  uint64_t galloped_elements = 0;
  /// Elements visited one-by-one by the linear merge strategy.
  uint64_t scanned_elements = 0;
};

/// Size ratio |long|/|short| above which the pairwise kernels switch from a
/// linear merge to galloping through the longer list. Below this ratio the
/// merge's sequential access pattern wins; above it the doubling search
/// skips enough elements to pay for its branches.
inline constexpr size_t kGallopSkewRatio = 8;

/// First position in [first, last) not less than `key`, located by
/// exponential search from `first`. Equivalent to std::lower_bound but
/// O(log distance-to-result) when the result is near `first` — the common
/// case when galloping through a list with a slowly-advancing cursor.
template <typename T>
const T* GallopLowerBound(const T* first, const T* last, const T& key) {
  const size_t n = static_cast<size_t>(last - first);
  if (n == 0 || !(first[0] < key)) return first;
  // Invariant: first[prev] < key; the answer lies in (prev, n].
  size_t prev = 0;
  size_t step = 1;
  while (step < n && first[step] < key) {
    prev = step;
    step <<= 1;
  }
  return std::lower_bound(first + prev + 1, first + std::min(step + 1, n),
                          key);
}

/// Appends the intersection of sorted duplicate-free `a` and `b` to `*out`
/// (existing contents are kept). Chooses linear merge vs galloping by
/// kGallopSkewRatio.
template <typename T>
void IntersectSortedAppend(std::span<const T> a, std::span<const T> b,
                           std::vector<T>* out,
                           IntersectCounters* counters = nullptr) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;
  if (b.size() >= kGallopSkewRatio * a.size()) {
    const T* cursor = b.data();
    const T* const end = b.data() + b.size();
    for (const T& x : a) {
      const T* pos = GallopLowerBound(cursor, end, x);
      if (counters != nullptr) {
        counters->galloped_elements += static_cast<uint64_t>(pos - cursor);
      }
      cursor = pos;
      if (cursor == end) break;
      if (*cursor == x) {
        out->push_back(x);
        ++cursor;
      }
    }
    return;
  }
  const T* ap = a.data();
  const T* const aend = a.data() + a.size();
  const T* bp = b.data();
  const T* const bend = b.data() + b.size();
  if (counters != nullptr) {
    counters->scanned_elements += static_cast<uint64_t>(a.size() + b.size());
  }
  while (ap != aend && bp != bend) {
    if (*ap < *bp) {
      ++ap;
    } else if (*bp < *ap) {
      ++bp;
    } else {
      out->push_back(*ap);
      ++ap;
      ++bp;
    }
  }
}

/// Replaces `*a` with the intersection of `*a` and sorted duplicate-free
/// `b`, writing into a's own storage (the result is a subsequence of `a`,
/// so no scratch is needed and no allocation happens).
template <typename T>
void IntersectInPlace(std::vector<T>* a, std::span<const T> b,
                      IntersectCounters* counters = nullptr) {
  if (a->empty()) return;
  if (b.empty()) {
    a->clear();
    return;
  }
  T* write = a->data();
  const T* read = a->data();
  const T* const aend = a->data() + a->size();
  const T* cursor = b.data();
  const T* const bend = b.data() + b.size();
  const bool gallop = b.size() >= kGallopSkewRatio * a->size();
  if (!gallop && counters != nullptr) {
    counters->scanned_elements += static_cast<uint64_t>(a->size() + b.size());
  }
  while (read != aend && cursor != bend) {
    if (gallop) {
      const T* pos = GallopLowerBound(cursor, bend, *read);
      if (counters != nullptr) {
        counters->galloped_elements += static_cast<uint64_t>(pos - cursor);
      }
      cursor = pos;
      if (cursor == bend) break;
    } else {
      while (cursor != bend && *cursor < *read) ++cursor;
      if (cursor == bend) break;
    }
    if (*cursor == *read) {
      *write++ = *read;
      ++cursor;
    }
    ++read;
  }
  a->resize(static_cast<size_t>(write - a->data()));
}

/// K-way intersection: rewrites `*out` with the intersection of all of
/// `lists` (each sorted ascending, duplicate-free). The smallest list
/// drives; every other list keeps a galloping cursor, so the cost is
/// O(|smallest| * sum log(|other|/|smallest|)) — the leapfrog pattern of
/// worst-case-optimal joins. `*cursors` is caller-owned scratch (resized,
/// never shrunk) so steady-state calls allocate nothing.
template <typename T>
void IntersectKWay(std::span<const std::span<const T>> lists,
                   std::vector<const T*>* cursors, std::vector<T>* out,
                   IntersectCounters* counters = nullptr) {
  out->clear();
  if (lists.empty()) return;
  size_t smallest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[smallest].size()) smallest = i;
  }
  if (lists[smallest].empty()) return;
  if (lists.size() == 1) {
    out->assign(lists[0].begin(), lists[0].end());
    return;
  }
  if (lists.size() == 2) {
    // Two lists: the pairwise kernel's merge/gallop adaptivity beats an
    // always-galloping leapfrog when sizes are similar.
    IntersectSortedAppend(lists[0], lists[1], out, counters);
    return;
  }
  cursors->assign(lists.size(), nullptr);
  for (size_t i = 0; i < lists.size(); ++i) (*cursors)[i] = lists[i].data();
  for (const T& x : lists[smallest]) {
    bool in_all = true;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == smallest) continue;
      const T* const end = lists[i].data() + lists[i].size();
      const T* pos = GallopLowerBound((*cursors)[i], end, x);
      if (counters != nullptr) {
        counters->galloped_elements +=
            static_cast<uint64_t>(pos - (*cursors)[i]);
      }
      (*cursors)[i] = pos;
      if (pos == end) return;  // nothing >= x left: the result is complete
      if (*pos != x) {
        in_all = false;
        break;
      }
    }
    if (in_all) out->push_back(x);
  }
}

}  // namespace amber

#endif  // AMBER_UTIL_INTERSECT_H_
