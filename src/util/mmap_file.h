// Read-only memory-mapped file: the substrate of the zero-copy artifact
// load path. POSIX-only (mmap/munmap), which matches the supported
// platforms of the build.

#ifndef AMBER_UTIL_MMAP_FILE_H_
#define AMBER_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <span>
#include <string>

#include "util/status.h"

namespace amber {

/// \brief Owns one read-only mmap of a whole file.
///
/// Move-only; the mapping is released on destruction. Everything that
/// borrows spans into the mapping (an engine restored from an AMF file)
/// must keep the MappedFile alive for as long as the spans are used.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(MappedFile&& o) noexcept : addr_(o.addr_), size_(o.size_) {
    o.addr_ = nullptr;
    o.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& o) noexcept {
    if (this != &o) {
      Reset();
      addr_ = o.addr_;
      size_ = o.size_;
      o.addr_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Fails with IOError if the file cannot be
  /// opened/mapped and with Corruption if it is empty.
  static Result<MappedFile> Open(const std::string& path);

  std::span<const std::byte> data() const {
    return {static_cast<const std::byte*>(addr_), size_};
  }
  size_t size() const { return size_; }

 private:
  void Reset();

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace amber

#endif  // AMBER_UTIL_MMAP_FILE_H_
