#include "util/amf.h"

#include <fstream>

#include "util/fault_injector.h"

namespace amber {
namespace amf {

namespace {

uint64_t AlignUp(uint64_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

// FNV-1a 64-bit over the raw section-table bytes. 0 is reserved to mean
// "unchecked" (pre-checksum writers), so a zero digest is remapped.
uint64_t TableChecksum(const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 1 : h;
}

}  // namespace

Status Writer::WriteTo(const std::string& path) const {
  // Lay out: header, table, then payloads at 64-byte-aligned offsets.
  std::vector<SectionEntry> table(sections_.size());
  uint64_t cursor =
      AlignUp(sizeof(FileHeader) + sections_.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections_.size(); ++i) {
    table[i].id = sections_[i].id;
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].length = sections_[i].bytes;
    cursor = AlignUp(cursor + sections_[i].bytes);
  }
  // The file is padded out to the final aligned cursor, so file_length is
  // always a multiple of kSectionAlign.
  const uint64_t file_length = cursor;

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IOError("cannot open " + path + " for writing");

  FileHeader header{};
  header.magic = kMagic;
  header.version = kVersion;
  header.section_count = table.size();
  header.file_length = file_length;
  header.table_checksum =
      TableChecksum(table.data(), table.size() * sizeof(SectionEntry));
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  os.write(reinterpret_cast<const char*>(table.data()),
           static_cast<std::streamsize>(table.size() * sizeof(SectionEntry)));

  static constexpr char kZeros[kSectionAlign] = {};
  uint64_t written = sizeof(FileHeader) + table.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < sections_.size(); ++i) {
    os.write(kZeros, static_cast<std::streamsize>(table[i].offset - written));
    if (sections_[i].bytes > 0) {
      os.write(static_cast<const char*>(sections_[i].data),
               static_cast<std::streamsize>(sections_[i].bytes));
    }
    written = table[i].offset + table[i].length;
  }
  os.write(kZeros, static_cast<std::streamsize>(file_length - written));
  os.flush();
  if (!os.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<Reader> Reader::Open(std::span<const std::byte> file) {
  // Artifact read-fault site: a torn/unreadable section table surfaces
  // here; injected faults exercise the same propagation path.
  AMBER_RETURN_IF_ERROR(FaultInjector::Global().Inject(faults::kAmfOpen));
  if (file.size() < sizeof(FileHeader)) {
    return Status::Corruption("AMF file shorter than header");
  }
  FileHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (header.magic != kMagic) return Status::Corruption("bad AMF magic");
  if (header.version != kVersion) {
    return Status::Corruption("unsupported AMF version " +
                              std::to_string(header.version));
  }
  if (header.file_length != file.size()) {
    return Status::Corruption("AMF file length mismatch (truncated?)");
  }
  const uint64_t table_bytes = header.section_count * sizeof(SectionEntry);
  if (header.section_count > (file.size() - sizeof(FileHeader)) /
                                 sizeof(SectionEntry)) {
    return Status::Corruption("AMF section table exceeds file");
  }
  if (header.table_checksum != 0 &&
      header.table_checksum !=
          TableChecksum(file.data() + sizeof(FileHeader), table_bytes)) {
    return Status::Corruption("AMF section table checksum mismatch");
  }

  Reader reader;
  reader.file_ = file;
  reader.index_.reserve(header.section_count);
  const std::byte* table = file.data() + sizeof(FileHeader);
  for (uint64_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry, table + i * sizeof(SectionEntry), sizeof(entry));
    if (entry.offset % kSectionAlign != 0) {
      return Status::Corruption("misaligned AMF section offset");
    }
    if (entry.offset < sizeof(FileHeader) + table_bytes ||
        entry.offset > file.size() || entry.length > file.size() ||
        entry.length > file.size() - entry.offset) {
      return Status::Corruption("AMF section out of bounds");
    }
    if (!reader.index_.emplace(entry.id, entry).second) {
      return Status::Corruption("duplicate AMF section id " +
                                std::to_string(entry.id));
    }
  }
  return reader;
}

}  // namespace amf
}  // namespace amber
