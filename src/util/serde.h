// Minimal binary serialization helpers for the offline-stage artifacts
// (multigraph + indexes). Format: little-endian PODs, length-prefixed
// strings/vectors, with a per-file magic number and version checked on load.

#ifndef AMBER_UTIL_SERDE_H_
#define AMBER_UTIL_SERDE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace amber {
namespace serde {

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadPod(std::istream& is, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!is.good()) return Status::Corruption("truncated stream reading POD");
  return Status::OK();
}

inline void WriteString(std::ostream& os, const std::string& s) {
  WritePod<uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline Status ReadString(std::istream& is, std::string* s) {
  uint64_t n = 0;
  AMBER_RETURN_IF_ERROR(ReadPod(is, &n));
  if (n > (1ULL << 40)) return Status::Corruption("implausible string length");
  s->resize(n);
  is.read(s->data(), static_cast<std::streamsize>(n));
  if (!is.good() && n > 0) {
    return Status::Corruption("truncated stream reading string");
  }
  return Status::OK();
}

template <typename T>
void WriteVector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
Status ReadVector(std::istream& is, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t n = 0;
  AMBER_RETURN_IF_ERROR(ReadPod(is, &n));
  if (n > (1ULL << 40) / sizeof(T)) {
    return Status::Corruption("implausible vector length");
  }
  v->resize(n);
  is.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!is.good() && n > 0) {
    return Status::Corruption("truncated stream reading vector");
  }
  return Status::OK();
}

/// Writes a file-format header (magic + version).
inline void WriteHeader(std::ostream& os, uint32_t magic, uint32_t version) {
  WritePod(os, magic);
  WritePod(os, version);
}

/// Validates a file-format header written by WriteHeader.
inline Status CheckHeader(std::istream& is, uint32_t expected_magic,
                          uint32_t expected_version) {
  uint32_t magic = 0, version = 0;
  AMBER_RETURN_IF_ERROR(ReadPod(is, &magic));
  AMBER_RETURN_IF_ERROR(ReadPod(is, &version));
  if (magic != expected_magic) return Status::Corruption("bad magic number");
  if (version != expected_version) {
    return Status::Corruption("unsupported format version");
  }
  return Status::OK();
}

}  // namespace serde
}  // namespace amber

#endif  // AMBER_UTIL_SERDE_H_
