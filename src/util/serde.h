// Minimal binary serialization helpers for the offline-stage artifacts
// (multigraph + indexes). Format: little-endian PODs, length-prefixed
// strings/vectors, with a per-file magic number and version checked on load.

#ifndef AMBER_UTIL_SERDE_H_
#define AMBER_UTIL_SERDE_H_

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace amber {
namespace serde {

/// Hard ceiling on any single serialized string/vector payload (1 TiB).
/// Lengths above it are rejected as corruption before any allocation.
inline constexpr uint64_t kMaxPayloadBytes = 1ULL << 40;

/// Containers grow in chunks of at most this many bytes while reading, so a
/// forged length on a truncated stream fails at the first missing chunk
/// instead of over-allocating the full claimed size up front.
inline constexpr uint64_t kReadChunkBytes = 1ULL << 20;

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadPod(std::istream& is, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!is.good()) return Status::Corruption("truncated stream reading POD");
  return Status::OK();
}

inline void WriteString(std::ostream& os, std::string_view s) {
  WritePod<uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline Status ReadString(std::istream& is, std::string* s) {
  uint64_t n = 0;
  AMBER_RETURN_IF_ERROR(ReadPod(is, &n));
  if (n > kMaxPayloadBytes) {
    return Status::Corruption("implausible string length");
  }
  s->clear();
  while (s->size() < n) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(kReadChunkBytes,
                                               n - s->size()));
    const size_t old_size = s->size();
    s->resize(old_size + chunk);
    is.read(s->data() + old_size, static_cast<std::streamsize>(chunk));
    if (!is.good()) {
      return Status::Corruption("truncated stream reading string");
    }
  }
  return Status::OK();
}

template <typename T>
void WriteSpan(std::ostream& os, std::span<const T> s) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(os, s.size());
  os.write(reinterpret_cast<const char*>(s.data()),
           static_cast<std::streamsize>(s.size_bytes()));
}

template <typename T>
void WriteVector(std::ostream& os, const std::vector<T>& v) {
  WriteSpan(os, std::span<const T>(v));
}

template <typename T>
Status ReadVector(std::istream& is, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t n = 0;
  AMBER_RETURN_IF_ERROR(ReadPod(is, &n));
  // Check the multiply for overflow *before* bounding the byte count: a
  // crafted n near 2^64 must not wrap n * sizeof(T) into a small number.
  if (n > std::numeric_limits<uint64_t>::max() / sizeof(T)) {
    return Status::Corruption("vector length overflows byte count");
  }
  if (n * sizeof(T) > kMaxPayloadBytes) {
    return Status::Corruption("implausible vector length");
  }
  v->clear();
  const uint64_t chunk_elems = std::max<uint64_t>(1, kReadChunkBytes /
                                                         sizeof(T));
  while (v->size() < n) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(chunk_elems, n - v->size()));
    const size_t old_size = v->size();
    v->resize(old_size + chunk);
    is.read(reinterpret_cast<char*>(v->data() + old_size),
            static_cast<std::streamsize>(chunk * sizeof(T)));
    if (!is.good()) {
      return Status::Corruption("truncated stream reading vector");
    }
  }
  return Status::OK();
}

/// Writes a file-format header (magic + version).
inline void WriteHeader(std::ostream& os, uint32_t magic, uint32_t version) {
  WritePod(os, magic);
  WritePod(os, version);
}

/// Validates a file-format header written by WriteHeader.
inline Status CheckHeader(std::istream& is, uint32_t expected_magic,
                          uint32_t expected_version) {
  uint32_t magic = 0, version = 0;
  AMBER_RETURN_IF_ERROR(ReadPod(is, &magic));
  AMBER_RETURN_IF_ERROR(ReadPod(is, &version));
  if (magic != expected_magic) return Status::Corruption("bad magic number");
  if (version != expected_version) {
    return Status::Corruption("unsupported format version");
  }
  return Status::OK();
}

}  // namespace serde
}  // namespace amber

#endif  // AMBER_UTIL_SERDE_H_
