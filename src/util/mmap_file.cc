#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault_injector.h"

namespace amber {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  // Artifact read-fault site: tests inject IO errors here to prove every
  // restore path surfaces them as Status, never as a crash.
  AMBER_RETURN_IF_ERROR(FaultInjector::Global().Inject(faults::kMmapOpen));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return Status::Corruption("empty file " + path);
  }
  void* addr = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(errno));
  }
  MappedFile file;
  file.addr_ = addr;
  file.size_ = static_cast<size_t>(st.st_size);
  return file;
}

void MappedFile::Reset() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    addr_ = nullptr;
    size_ = 0;
  }
}

}  // namespace amber
