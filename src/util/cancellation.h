// Cooperative cancellation for query execution (docs/ARCHITECTURE.md,
// "Streaming & cancellation").
//
// A CancellationSource owns a shared cancel flag; CancellationTokens are
// cheap copyable views of it, threaded through ExecOptions into the matcher
// tick check and the parallel chunk-claim loop. Cancellation is
// *cooperative*: Cancel() never interrupts anything by force — running code
// polls cancelled() at its existing amortized check points and unwinds, so
// a cancelled query stops within one tick window (~64 recursion steps)
// exactly like a deadline expiry, reporting ExecStats::cancelled.
//
// Cost model mirrors util/fault_injector.h: the not-cancelled fast path of
// cancelled() is one relaxed atomic load per linked state (plus a null
// check for the default token, which can never be cancelled). Relaxed
// ordering suffices — the flag carries no payload, it only tells the
// observer to stop; every result handoff has its own synchronization.
//
// Sources can be *linked*: CancellationSource(parent_token) creates a
// source whose tokens observe the parent chain too, so a service request
// can merge an external client token with its own internal abort signal
// (sink abort, orphaned-flight retirement) without callbacks or extra
// threads. Cancel() notifies waiters blocked in WaitFor(); a cancellation
// arriving through a *parent* link is detected by bounded polling instead
// (WaitFor slices its sleep), trading a few milliseconds of wake-up latency
// for a completely passive design.
//
// Thread-safety: all members of both classes may be called concurrently
// from any thread. Cancellation is sticky — there is no reset; create a new
// source per request.

#ifndef AMBER_UTIL_CANCELLATION_H_
#define AMBER_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace amber {

class CancellationSource;

/// \brief A view of a cancellation flag. See file comment.
///
/// The default-constructed token is never cancelled and costs one pointer
/// compare to check — ExecOptions embeds one by value so non-cancellable
/// executions pay (almost) nothing.
class CancellationToken {
 public:
  /// Never cancelled.
  CancellationToken() = default;

  /// True once the owning source (or any linked parent) was cancelled.
  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// True when this token is connected to a source at all (a token that
  /// can never fire lets callers skip polling entirely).
  bool can_be_cancelled() const { return state_ != nullptr; }

  /// Sleeps up to `timeout`, waking early on cancellation; returns the
  /// final cancelled() state. Cancellations of the own source wake the
  /// wait immediately; parent-link cancellations are noticed within one
  /// poll slice (a few ms). The interruptible backoff sleep of the serving
  /// retry loop.
  bool WaitFor(std::chrono::milliseconds timeout) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    if (state_ == nullptr) {
      std::this_thread::sleep_for(timeout);
      return false;
    }
    std::unique_lock<std::mutex> lock(state_->mu);
    while (!cancelled()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      auto slice = deadline - now;
      if (state_->parent != nullptr) {
        // Parent cancellations don't notify our cv; bound the slice so
        // they are noticed promptly.
        slice = std::min<std::chrono::steady_clock::duration>(
            slice, std::chrono::milliseconds(2));
      }
      state_->cv.wait_for(lock, slice);
    }
    return cancelled();
  }

 private:
  friend class CancellationSource;

  struct State {
    std::atomic<bool> flag{false};
    std::mutex mu;
    std::condition_variable cv;
    /// Immutable after construction: the linked parent chain.
    std::shared_ptr<State> parent;
  };

  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// \brief Owns a cancellation flag and hands out tokens. See file comment.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<CancellationToken::State>()) {}

  /// A source whose tokens also observe `parent` (merged cancellation):
  /// cancelled() fires when either this source or the parent's chain does.
  explicit CancellationSource(const CancellationToken& parent)
      : CancellationSource() {
    state_->parent = parent.state_;
  }

  /// Trips the flag (sticky) and wakes every WaitFor() on tokens of THIS
  /// source. Idempotent; callable from any thread.
  void Cancel() {
    {
      // The store is inside the mutex so a WaitFor between its predicate
      // check and its wait cannot miss the notification.
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->flag.store(true, std::memory_order_relaxed);
    }
    state_->cv.notify_all();
  }

  /// True once Cancel() was called (or a linked parent was cancelled).
  bool cancelled() const { return token().cancelled(); }

  /// A token observing this source (and its parent link).
  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<CancellationToken::State> state_;
};

}  // namespace amber

#endif  // AMBER_UTIL_CANCELLATION_H_
