// AMF — the single-file, mmap-able artifact format of the offline stage.
//
// Layout (all integers little-endian, the only byte order we target):
//
//   [ 0, 64)              FileHeader: magic "AMF1", version, section count,
//                         total file length (a cheap truncation check), and
//                         an FNV-1a checksum of the section table (so a
//                         flipped offset cannot silently redirect a reader
//                         into the wrong payload).
//   [64, 64 + 24*count)   Section table: one SectionEntry {id, offset,
//                         length} per section, in write order.
//   ...                   Section payloads, each offset 64-byte aligned and
//                         zero-padded up to the next section.
//
// A section is one raw array of trivially-copyable elements (a CSR offsets
// array, a trie node pool, a dictionary string blob...). Section ids are a
// flat u32 namespace owned by the components (see the kAmf* constants next
// to each Save/LoadAmf implementation). Loading is mmap + header/table
// validation + per-section bounds checks; payloads are *never* copied —
// consumers hold std::spans into the mapping (ArrayRef::Borrowed).
//
// Versioning rules (docs/ARCHITECTURE.md "Artifact format"):
//   * adding a new section id is backward-compatible (old readers that do
//     not know the id ignore it; readers requiring it fail with NotFound),
//   * changing the element layout of an existing section requires bumping
//     kVersion — readers reject any version they were not built for.

#ifndef AMBER_UTIL_AMF_H_
#define AMBER_UTIL_AMF_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace amber {
namespace amf {

inline constexpr uint32_t kMagic = 0x31464D41;  // "AMF1"
inline constexpr uint32_t kVersion = 1;
inline constexpr uint64_t kSectionAlign = 64;

struct FileHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t section_count;
  uint64_t file_length;
  uint64_t table_checksum;  // FNV-1a over the section table; 0 = unchecked
  uint8_t reserved[32];
};
static_assert(sizeof(FileHeader) == 64);

struct SectionEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;  // from file start; kSectionAlign-aligned
  uint64_t length;  // payload bytes (excluding padding)
};
static_assert(sizeof(SectionEntry) == 24);

/// \brief Collects section references, then writes the file in one pass.
///
/// AddArray records a span into live engine structures (no copy); the spans
/// must stay valid until WriteTo returns. AddOwned/AddPod move small
/// payloads (metadata structs, materialized dictionary offset tables) into
/// the writer, which keeps them alive itself.
class Writer {
 public:
  template <typename T>
  void AddArray(uint32_t id, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sections_.push_back(Pending{id, data.data(), data.size_bytes(), nullptr});
  }

  template <typename T>
  void AddOwned(uint32_t id, std::vector<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto holder = std::make_shared<std::vector<T>>(std::move(data));
    sections_.push_back(Pending{id, holder->data(),
                                holder->size() * sizeof(T),
                                std::move(holder)});
  }

  template <typename T>
  void AddPod(uint32_t id, const T& pod) {
    AddOwned(id, std::vector<T>{pod});
  }

  size_t NumSections() const { return sections_.size(); }

  /// Writes header + table + payloads to `path` (truncating). The layout is
  /// a pure function of the added sections, so two writers fed identical
  /// data produce byte-identical files.
  Status WriteTo(const std::string& path) const;

 private:
  struct Pending {
    uint32_t id;
    const void* data;
    uint64_t bytes;
    std::shared_ptr<const void> keepalive;
  };
  std::vector<Pending> sections_;
};

/// Shared check for borrowed CSR-style offset tables: non-empty, starts at
/// 0, ends exactly at `pool_size`, monotone non-decreasing. Every LoadAmf
/// that borrows an offsets/pool pair funnels through this so the
/// corruption rules cannot drift between components.
inline Status ValidateOffsets(std::span<const uint64_t> offsets,
                              uint64_t pool_size, const char* what) {
  if (offsets.empty()) {
    return Status::Corruption(std::string(what) + " offsets table empty");
  }
  if (offsets.front() != 0 || offsets.back() != pool_size) {
    return Status::Corruption(std::string(what) + " offsets range mismatch");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(std::string(what) +
                                " offsets not monotonic");
    }
  }
  return Status::OK();
}

/// \brief Validated view over a mapped AMF file.
///
/// Holds only a span; whoever owns the mapping (the engine's MappedFile)
/// must outlive the Reader *and* every span handed out by Array().
class Reader {
 public:
  /// Validates the header and the full section table: magic, version,
  /// recorded file length, per-section alignment and bounds, duplicate ids.
  static Result<Reader> Open(std::span<const std::byte> file);

  bool Has(uint32_t id) const { return index_.count(id) > 0; }

  /// The payload of section `id` as a typed span (zero-copy). Fails with
  /// NotFound for unknown ids and Corruption when the payload length is not
  /// a multiple of sizeof(T).
  template <typename T>
  Result<std::span<const T>> Array(uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto it = index_.find(id);
    if (it == index_.end()) {
      return Status::NotFound("missing AMF section " + std::to_string(id));
    }
    const SectionEntry& s = it->second;
    if (s.length % sizeof(T) != 0) {
      return Status::Corruption("AMF section " + std::to_string(id) +
                                " length not a multiple of element size");
    }
    return std::span<const T>(
        reinterpret_cast<const T*>(file_.data() + s.offset),
        s.length / sizeof(T));
  }

  /// Reads a single-element section into `*out`.
  template <typename T>
  Status Pod(uint32_t id, T* out) const {
    AMBER_ASSIGN_OR_RETURN(std::span<const T> s, Array<T>(id));
    if (s.size() != 1) {
      return Status::Corruption("AMF pod section " + std::to_string(id) +
                                " has wrong length");
    }
    std::memcpy(out, s.data(), sizeof(T));
    return Status::OK();
  }

 private:
  std::span<const std::byte> file_;
  std::unordered_map<uint32_t, SectionEntry> index_;
};

}  // namespace amf
}  // namespace amber

#endif  // AMBER_UTIL_AMF_H_
