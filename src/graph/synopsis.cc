#include "graph/synopsis.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace amber {

std::string Synopsis::ToString() const {
  std::string out = "[";
  for (int i = 0; i < kNumFields; ++i) {
    if (i == 4) out += "| ";
    out += std::to_string(f[i]);
    out += (i + 1 == kNumFields) ? "]" : " ";
  }
  return out;
}

void SynopsisBuilder::Reset() {
  for (Side& s : sides_) {
    s.max_cardinality = 0;
    s.all_types.clear();
  }
}

void SynopsisBuilder::AddMultiEdge(Direction d,
                                   std::span<const EdgeTypeId> types) {
  if (types.empty()) return;
  Side& side = sides_[static_cast<int>(d)];
  side.max_cardinality =
      std::max(side.max_cardinality, static_cast<int32_t>(types.size()));
  side.all_types.insert(side.all_types.end(), types.begin(), types.end());
}

Synopsis SynopsisBuilder::Build() {
  Synopsis s;
  for (int d = 0; d < 2; ++d) {
    Side& side = sides_[d];
    const int base = (d == static_cast<int>(Direction::kIn)) ? 0 : 4;
    if (side.all_types.empty()) continue;  // all-zero half
    std::sort(side.all_types.begin(), side.all_types.end());
    side.all_types.erase(
        std::unique(side.all_types.begin(), side.all_types.end()),
        side.all_types.end());
    s.f[base + 0] = side.max_cardinality;
    s.f[base + 1] = static_cast<int32_t>(side.all_types.size());
    s.f[base + 2] = -static_cast<int32_t>(side.all_types.front());
    s.f[base + 3] = static_cast<int32_t>(side.all_types.back());
  }
  return s;
}

Synopsis ComputeVertexSynopsis(const Multigraph& g, VertexId v) {
  SynopsisBuilder builder;
  for (Direction d : {Direction::kIn, Direction::kOut}) {
    const size_t n = g.GroupCount(v, d);
    for (size_t i = 0; i < n; ++i) {
      builder.AddMultiEdge(d, g.Group(v, d, i).types);
    }
  }
  return builder.Build();
}

std::vector<Synopsis> ComputeAllSynopses(const Multigraph& g,
                                         ThreadPool* pool) {
  std::vector<Synopsis> out(g.NumVertices());
  if (pool != nullptr) {
    // Each vertex writes only its own slot, so sharding is free of
    // coordination and the result is bit-identical to the serial loop.
    pool->ParallelFor(g.NumVertices(), [&g, &out](size_t v) {
      out[v] = ComputeVertexSynopsis(g, static_cast<VertexId>(v));
    });
    return out;
  }
  SynopsisBuilder builder;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    builder.Reset();
    for (Direction d : {Direction::kIn, Direction::kOut}) {
      const size_t n = g.GroupCount(v, d);
      for (size_t i = 0; i < n; ++i) {
        builder.AddMultiEdge(d, g.Group(v, d, i).types);
      }
    }
    out[v] = builder.Build();
  }
  return out;
}

}  // namespace amber
