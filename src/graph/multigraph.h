// The directed, vertex-attributed data multigraph G of Definition 1.
//
// Storage is a two-level CSR per direction:
//
//   vertex v --> [neighbour groups] --> [edge-type ids]
//
// A *group* is the multi-edge between v and one neighbour: the set of edge
// types on the (v, neighbour) pair, sorted ascending. Groups of a vertex are
// sorted by neighbour id, so the multi-edge of a specific pair is found by
// binary search and returned as one contiguous span. Vertex attributes (the
// <predicate, literal> pairs of Section 2.1.1) live in a parallel CSR.
//
// The structure is immutable after Build(); this is the paper's offline
// stage artifact, and immutability is what lets the indexes hold raw spans
// into it.

#ifndef AMBER_GRAPH_MULTIGRAPH_H_
#define AMBER_GRAPH_MULTIGRAPH_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "rdf/encoded_dataset.h"
#include "util/amf.h"
#include "util/status.h"
#include "util/storage.h"

namespace amber {

class ThreadPool;

/// Edge orientation relative to a vertex. Following the paper's convention,
/// an edge *incoming* to a vertex is positive ('+') and an *outgoing* edge is
/// negative ('-').
enum class Direction : uint8_t {
  kIn = 0,   // '+' edges pointing at the vertex
  kOut = 1,  // '-' edges leaving the vertex
};

/// Flips kIn <-> kOut.
inline Direction Opposite(Direction d) {
  return d == Direction::kIn ? Direction::kOut : Direction::kIn;
}

/// One neighbour group: a neighbour vertex and the multi-edge (sorted edge
/// types) shared with it.
struct GroupView {
  VertexId neighbor;
  std::span<const EdgeTypeId> types;
};

/// \brief Immutable directed vertex-attributed multigraph (Definition 1).
class Multigraph {
 public:
  /// \brief Accumulates edges/attributes, then sorts and dedups into a
  /// Multigraph.
  class Builder {
   public:
    Builder() = default;

    /// Adds the directed edge s --t--> o. Duplicate (s,t,o) statements are
    /// deduplicated at Build() time (RDF is a *set* of triples).
    void AddEdge(VertexId s, EdgeTypeId t, VertexId o);

    /// Attaches attribute `a` to vertex `v`.
    void AddAttribute(VertexId v, AttributeId a);

    /// Ensures the graph has at least `n` vertices (isolated vertices are
    /// legal: a subject may only carry attributes).
    void EnsureVertexCount(size_t n);

    /// Finalizes the graph. The builder is consumed. When `pool` is
    /// non-null, the two adjacency directions and the attribute CSR are
    /// built as concurrent tasks; the result is bit-identical to the
    /// serial build.
    Multigraph Build(ThreadPool* pool = nullptr) &&;

   private:
    std::vector<EncodedEdge> edges_;
    std::vector<EncodedAttribute> attrs_;
    size_t min_vertices_ = 0;
  };

  Multigraph() = default;

  /// Builds the multigraph of an encoded dataset (offline stage).
  static Multigraph FromDataset(const EncodedDataset& dataset,
                                ThreadPool* pool = nullptr);

  size_t NumVertices() const { return num_vertices_; }
  /// Number of distinct directed typed edges (s, t, o).
  uint64_t NumEdges() const { return num_edges_; }
  /// Number of distinct edge types (max id + 1 over stored edges, or the
  /// value forced via Builder dataset encoding).
  size_t NumEdgeTypes() const { return num_edge_types_; }
  /// Number of distinct attribute ids referenced.
  size_t NumAttributes() const { return num_attributes_; }
  /// Number of (vertex, attribute) assignments.
  uint64_t NumAttributeAssignments() const { return attr_pool_.size(); }

  /// Sorted attribute ids of vertex `v`.
  std::span<const AttributeId> Attributes(VertexId v) const {
    return {attr_pool_.data() + attr_offsets_[v],
            attr_offsets_[v + 1] - attr_offsets_[v]};
  }

  /// Number of neighbour groups (= distinct neighbours) of `v` on side `d`.
  size_t GroupCount(VertexId v, Direction d) const {
    const Adjacency& a = adj_[static_cast<int>(d)];
    return a.offsets[v + 1] - a.offsets[v];
  }

  /// The `i`-th neighbour group of `v` on side `d` (groups sorted by
  /// neighbour id).
  GroupView Group(VertexId v, Direction d, size_t i) const {
    const Adjacency& a = adj_[static_cast<int>(d)];
    const GroupEntry& g = a.groups[a.offsets[v] + i];
    return {g.neighbor, {a.types.data() + g.type_begin, g.type_count}};
  }

  /// The multi-edge between `v` and `neighbor` on side `d`; empty span when
  /// the pair is not adjacent. For d == kOut this is L_E(v, neighbor).
  std::span<const EdgeTypeId> MultiEdge(VertexId v, Direction d,
                                        VertexId neighbor) const;

  /// True iff the edge s --t--> o exists.
  bool HasEdge(VertexId s, EdgeTypeId t, VertexId o) const;

  /// True iff every type in `types` (sorted) is on the (v, neighbor) pair on
  /// side `d`.
  bool HasMultiEdgeSuperset(VertexId v, Direction d, VertexId neighbor,
                            std::span<const EdgeTypeId> types) const;

  /// Total in-degree + out-degree in distinct neighbours (used by baselines
  /// for ordering).
  size_t DegreeGroups(VertexId v) const {
    return GroupCount(v, Direction::kIn) + GroupCount(v, Direction::kOut);
  }

  /// Approximate heap footprint in bytes.
  uint64_t ByteSize() const;

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  /// AMF sections: one meta pod plus the seven CSR arrays, all borrowed
  /// zero-copy from the mapping on LoadAmf.
  void SaveAmf(amf::Writer* w) const;
  Status LoadAmf(const amf::Reader& r);

  bool operator==(const Multigraph& o) const;

 private:
  struct GroupEntry {
    VertexId neighbor;
    uint32_t type_begin;
    uint32_t type_count;
  };

  struct Adjacency {
    ArrayRef<uint64_t> offsets;  // size NumVertices()+1, into groups
    ArrayRef<GroupEntry> groups;
    ArrayRef<EdgeTypeId> types;  // pooled, per-group contiguous + sorted

    bool operator==(const Adjacency& o) const;
  };

  // Builds the (offsets, groups, types) arrays from edges sorted in (key,
  // neighbor, type) order where key is the owning vertex on side `d`.
  static void BuildAdjacency(std::vector<EncodedEdge>* edges, Direction d,
                             size_t num_vertices, Adjacency* adj);

  friend class Builder;

  size_t num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  size_t num_edge_types_ = 0;
  size_t num_attributes_ = 0;

  Adjacency adj_[2];  // indexed by Direction

  ArrayRef<uint64_t> attr_offsets_;    // size NumVertices()+1
  ArrayRef<AttributeId> attr_pool_;    // sorted per vertex
};

}  // namespace amber

#endif  // AMBER_GRAPH_MULTIGRAPH_H_
