// Vertex signatures and synopses (Section 4.2, Definition 3, Table 3).
//
// The *signature* of a vertex is the multiset of multi-edges incident on it,
// split into incoming ('+') and outgoing ('-') sides. The *synopsis* is an
// 8-field surrogate of the signature:
//
//   f1 = maximum cardinality of a multi-edge,
//   f2 = number of distinct edge types in the signature,
//   f3 = NEGATED minimum edge-type id,
//   f4 = maximum edge-type id,
//
// replicated for the incoming (+) and outgoing (-) sides. f3 is stored
// negated so that *all* candidate constraints become component-wise
// dominance: a data vertex v can match a query vertex u only if
// q.f[i] <= v.f[i] for every i (Lemma 1 — the filter is complete).

#ifndef AMBER_GRAPH_SYNOPSIS_H_
#define AMBER_GRAPH_SYNOPSIS_H_

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "graph/multigraph.h"

namespace amber {

/// \brief 8-field synopsis of a vertex signature (Table 3).
struct Synopsis {
  // Field layout: [f1+, f2+, f3+, f4+, f1-, f2-, f3-, f4-].
  static constexpr int kNumFields = 8;

  /// Sentinel for the f3 field of an *empty* side in a query synopsis.
  ///
  /// The paper zero-fills empty sides (Table 3) and negates f3 so that all
  /// candidate constraints become q.f[i] <= v.f[i]. Those two conventions
  /// conflict: a query vertex with an empty side would demand v.f3 >= 0,
  /// i.e. a data min edge-type id of 0, wrongly pruning valid candidates.
  /// Queries therefore replace the f3 of empty sides with this -inf-like
  /// sentinel (NormalizedForQuery) before probing the index; data synopses
  /// keep the paper's zero-fill.
  static constexpr int32_t kEmptySideQueryF3 =
      std::numeric_limits<int32_t>::min() / 2;

  std::array<int32_t, kNumFields> f{};

  /// True iff a vertex with this synopsis can host a query vertex with
  /// synopsis `q`: component-wise q.f[i] <= f[i]. `q` must be normalized
  /// via NormalizedForQuery() if it can have empty sides.
  bool Dominates(const Synopsis& q) const {
    for (int i = 0; i < kNumFields; ++i) {
      if (q.f[i] > f[i]) return false;
    }
    return true;
  }

  /// Copy with the f3 field of empty sides replaced by the sentinel (an
  /// empty query side imposes no constraints). A side is empty iff its f1
  /// is 0 — any non-empty side has f1 >= 1.
  Synopsis NormalizedForQuery() const {
    Synopsis out = *this;
    if (out.f[0] == 0) out.f[2] = kEmptySideQueryF3;
    if (out.f[4] == 0) out.f[6] = kEmptySideQueryF3;
    return out;
  }

  bool operator==(const Synopsis& o) const { return f == o.f; }

  /// "[f1+ f2+ f3+ f4+ | f1- f2- f3- f4-]" for logs and tests.
  std::string ToString() const;
};

/// \brief Accumulates the multi-edges of one vertex and derives its synopsis.
///
/// Reusable across vertices via Reset() to avoid per-vertex allocations
/// during whole-graph synopsis computation.
class SynopsisBuilder {
 public:
  void Reset();

  /// Adds one multi-edge (the sorted edge-type set shared with a single
  /// neighbour) on side `d`.
  void AddMultiEdge(Direction d, std::span<const EdgeTypeId> types);

  /// Derives the synopsis from everything added since Reset().
  Synopsis Build();

 private:
  struct Side {
    int32_t max_cardinality = 0;
    std::vector<EdgeTypeId> all_types;  // sorted+uniqued in Build()
  };
  Side sides_[2];  // indexed by Direction
};

class ThreadPool;

/// Synopsis of data vertex `v` in `g`.
Synopsis ComputeVertexSynopsis(const Multigraph& g, VertexId v);

/// Synopses of all vertices of `g`, indexed by vertex id. With a pool, the
/// per-vertex computations are sharded across workers (bit-identical to
/// the serial result).
std::vector<Synopsis> ComputeAllSynopses(const Multigraph& g,
                                         ThreadPool* pool = nullptr);

}  // namespace amber

#endif  // AMBER_GRAPH_SYNOPSIS_H_
