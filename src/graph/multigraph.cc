#include "graph/multigraph.h"

#include <algorithm>
#include <cassert>

#include "util/serde.h"

namespace amber {

namespace {
constexpr uint32_t kGraphMagic = 0x414D4247;  // "AMBG"
constexpr uint32_t kGraphVersion = 1;
}  // namespace

void Multigraph::Builder::AddEdge(VertexId s, EdgeTypeId t, VertexId o) {
  edges_.push_back(EncodedEdge{s, t, o});
}

void Multigraph::Builder::AddAttribute(VertexId v, AttributeId a) {
  attrs_.push_back(EncodedAttribute{v, a});
}

void Multigraph::Builder::EnsureVertexCount(size_t n) {
  min_vertices_ = std::max(min_vertices_, n);
}

Multigraph Multigraph::Builder::Build() && {
  Multigraph g;

  size_t num_vertices = min_vertices_;
  for (const EncodedEdge& e : edges_) {
    num_vertices = std::max<size_t>(num_vertices, e.subject + 1);
    num_vertices = std::max<size_t>(num_vertices, e.object + 1);
    g.num_edge_types_ =
        std::max<size_t>(g.num_edge_types_, e.predicate + 1);
  }
  for (const EncodedAttribute& a : attrs_) {
    num_vertices = std::max<size_t>(num_vertices, a.subject + 1);
    g.num_attributes_ = std::max<size_t>(g.num_attributes_, a.attribute + 1);
  }
  g.num_vertices_ = num_vertices;

  // Deduplicate edges: RDF data is a set of statements.
  std::sort(edges_.begin(), edges_.end(),
            [](const EncodedEdge& a, const EncodedEdge& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.object != b.object) return a.object < b.object;
              return a.predicate < b.predicate;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const EncodedEdge& a, const EncodedEdge& b) {
                             return a.subject == b.subject &&
                                    a.object == b.object &&
                                    a.predicate == b.predicate;
                           }),
               edges_.end());
  g.num_edges_ = edges_.size();

  BuildAdjacency(&edges_, Direction::kOut, num_vertices,
                 &g.adj_[static_cast<int>(Direction::kOut)]);
  BuildAdjacency(&edges_, Direction::kIn, num_vertices,
                 &g.adj_[static_cast<int>(Direction::kIn)]);

  // Attributes CSR.
  std::sort(attrs_.begin(), attrs_.end(),
            [](const EncodedAttribute& a, const EncodedAttribute& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              return a.attribute < b.attribute;
            });
  attrs_.erase(std::unique(attrs_.begin(), attrs_.end(),
                           [](const EncodedAttribute& a,
                              const EncodedAttribute& b) {
                             return a.subject == b.subject &&
                                    a.attribute == b.attribute;
                           }),
               attrs_.end());
  g.attr_offsets_.assign(num_vertices + 1, 0);
  for (const EncodedAttribute& a : attrs_) {
    ++g.attr_offsets_[a.subject + 1];
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    g.attr_offsets_[v + 1] += g.attr_offsets_[v];
  }
  g.attr_pool_.reserve(attrs_.size());
  for (const EncodedAttribute& a : attrs_) {
    g.attr_pool_.push_back(a.attribute);
  }

  return g;
}

void Multigraph::BuildAdjacency(std::vector<EncodedEdge>* edges, Direction d,
                                size_t num_vertices, Adjacency* adj) {
  const bool out = (d == Direction::kOut);
  auto key = [out](const EncodedEdge& e) {
    return out ? e.subject : e.object;
  };
  auto nbr = [out](const EncodedEdge& e) {
    return out ? e.object : e.subject;
  };
  std::sort(edges->begin(), edges->end(),
            [&](const EncodedEdge& a, const EncodedEdge& b) {
              if (key(a) != key(b)) return key(a) < key(b);
              if (nbr(a) != nbr(b)) return nbr(a) < nbr(b);
              return a.predicate < b.predicate;
            });

  adj->offsets.assign(num_vertices + 1, 0);
  adj->groups.clear();
  adj->types.clear();
  adj->types.reserve(edges->size());

  size_t i = 0;
  while (i < edges->size()) {
    VertexId v = key((*edges)[i]);
    VertexId n = nbr((*edges)[i]);
    GroupEntry group;
    group.neighbor = n;
    group.type_begin = static_cast<uint32_t>(adj->types.size());
    size_t j = i;
    while (j < edges->size() && key((*edges)[j]) == v &&
           nbr((*edges)[j]) == n) {
      adj->types.push_back((*edges)[j].predicate);
      ++j;
    }
    group.type_count = static_cast<uint32_t>(j - i);
    adj->groups.push_back(group);
    ++adj->offsets[v + 1];
    i = j;
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    adj->offsets[v + 1] += adj->offsets[v];
  }
}

Multigraph Multigraph::FromDataset(const EncodedDataset& dataset) {
  Builder builder;
  builder.EnsureVertexCount(dataset.dictionaries.vertices().size());
  for (const EncodedEdge& e : dataset.edges) {
    builder.AddEdge(e.subject, e.predicate, e.object);
  }
  for (const EncodedAttribute& a : dataset.attributes) {
    builder.AddAttribute(a.subject, a.attribute);
  }
  Multigraph g = std::move(builder).Build();
  // The dictionaries are authoritative for id-space sizes: an edge type or
  // attribute may exist in the dictionary without surviving deduplication.
  g.num_edge_types_ =
      std::max(g.num_edge_types_, dataset.dictionaries.edge_types().size());
  g.num_attributes_ =
      std::max(g.num_attributes_, dataset.dictionaries.attributes().size());
  return g;
}

std::span<const EdgeTypeId> Multigraph::MultiEdge(VertexId v, Direction d,
                                                  VertexId neighbor) const {
  const Adjacency& a = adj_[static_cast<int>(d)];
  const GroupEntry* begin = a.groups.data() + a.offsets[v];
  const GroupEntry* end = a.groups.data() + a.offsets[v + 1];
  const GroupEntry* it = std::lower_bound(
      begin, end, neighbor, [](const GroupEntry& g, VertexId n) {
        return g.neighbor < n;
      });
  if (it == end || it->neighbor != neighbor) return {};
  return {a.types.data() + it->type_begin, it->type_count};
}

bool Multigraph::HasEdge(VertexId s, EdgeTypeId t, VertexId o) const {
  std::span<const EdgeTypeId> types = MultiEdge(s, Direction::kOut, o);
  return std::binary_search(types.begin(), types.end(), t);
}

bool Multigraph::HasMultiEdgeSuperset(
    VertexId v, Direction d, VertexId neighbor,
    std::span<const EdgeTypeId> types) const {
  std::span<const EdgeTypeId> have = MultiEdge(v, d, neighbor);
  if (have.size() < types.size()) return false;
  // Both sides sorted: linear merge containment test.
  size_t i = 0;
  for (EdgeTypeId t : types) {
    while (i < have.size() && have[i] < t) ++i;
    if (i == have.size() || have[i] != t) return false;
    ++i;
  }
  return true;
}

uint64_t Multigraph::ByteSize() const {
  uint64_t total = 0;
  for (const Adjacency& a : adj_) {
    total += a.offsets.capacity() * sizeof(uint64_t);
    total += a.groups.capacity() * sizeof(GroupEntry);
    total += a.types.capacity() * sizeof(EdgeTypeId);
  }
  total += attr_offsets_.capacity() * sizeof(uint64_t);
  total += attr_pool_.capacity() * sizeof(AttributeId);
  return total;
}

bool Multigraph::Adjacency::operator==(const Adjacency& o) const {
  if (offsets != o.offsets || types != o.types) return false;
  if (groups.size() != o.groups.size()) return false;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].neighbor != o.groups[i].neighbor ||
        groups[i].type_begin != o.groups[i].type_begin ||
        groups[i].type_count != o.groups[i].type_count) {
      return false;
    }
  }
  return true;
}

bool Multigraph::operator==(const Multigraph& o) const {
  return num_vertices_ == o.num_vertices_ && num_edges_ == o.num_edges_ &&
         num_edge_types_ == o.num_edge_types_ &&
         num_attributes_ == o.num_attributes_ && adj_[0] == o.adj_[0] &&
         adj_[1] == o.adj_[1] && attr_offsets_ == o.attr_offsets_ &&
         attr_pool_ == o.attr_pool_;
}

void Multigraph::Save(std::ostream& os) const {
  serde::WriteHeader(os, kGraphMagic, kGraphVersion);
  serde::WritePod<uint64_t>(os, num_vertices_);
  serde::WritePod<uint64_t>(os, num_edges_);
  serde::WritePod<uint64_t>(os, num_edge_types_);
  serde::WritePod<uint64_t>(os, num_attributes_);
  for (const Adjacency& a : adj_) {
    serde::WriteVector(os, a.offsets);
    serde::WritePod<uint64_t>(os, a.groups.size());
    for (const GroupEntry& g : a.groups) {
      serde::WritePod(os, g.neighbor);
      serde::WritePod(os, g.type_begin);
      serde::WritePod(os, g.type_count);
    }
    serde::WriteVector(os, a.types);
  }
  serde::WriteVector(os, attr_offsets_);
  serde::WriteVector(os, attr_pool_);
}

Status Multigraph::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(serde::CheckHeader(is, kGraphMagic, kGraphVersion));
  uint64_t v64 = 0;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v64));
  num_vertices_ = v64;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &num_edges_));
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v64));
  num_edge_types_ = v64;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v64));
  num_attributes_ = v64;
  for (Adjacency& a : adj_) {
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &a.offsets));
    uint64_t n = 0;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
    a.groups.resize(n);
    for (GroupEntry& g : a.groups) {
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &g.neighbor));
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &g.type_begin));
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &g.type_count));
    }
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &a.types));
    if (a.offsets.size() != num_vertices_ + 1) {
      return Status::Corruption("adjacency offsets size mismatch");
    }
  }
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_offsets_));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_pool_));
  if (attr_offsets_.size() != num_vertices_ + 1) {
    return Status::Corruption("attribute offsets size mismatch");
  }
  return Status::OK();
}

}  // namespace amber
