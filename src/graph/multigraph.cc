#include "graph/multigraph.h"

#include <algorithm>
#include <cassert>

#include "util/serde.h"
#include "util/thread_pool.h"

namespace amber {

namespace {
constexpr uint32_t kGraphMagic = 0x414D4247;  // "AMBG"
constexpr uint32_t kGraphVersion = 1;

// AMF section ids (namespace 0x10xx).
constexpr uint32_t kAmfMgMeta = 0x1000;
constexpr uint32_t kAmfMgAdjBase = 0x1010;  // + 0x10 per direction
constexpr uint32_t kAmfMgAttrOffsets = 0x1030;
constexpr uint32_t kAmfMgAttrPool = 0x1031;

struct MgMetaPod {
  uint64_t num_vertices;
  uint64_t num_edges;
  uint64_t num_edge_types;
  uint64_t num_attributes;
};

// amf::ValidateOffsets plus the size the graph's meta demands.
Status ValidateOffsets(std::span<const uint64_t> offsets, size_t expect_size,
                       uint64_t pool_size, const char* what) {
  if (offsets.size() != expect_size) {
    return Status::Corruption(std::string(what) + " offsets size mismatch");
  }
  return amf::ValidateOffsets(offsets, pool_size, what);
}
}  // namespace

void Multigraph::Builder::AddEdge(VertexId s, EdgeTypeId t, VertexId o) {
  edges_.push_back(EncodedEdge{s, t, o});
}

void Multigraph::Builder::AddAttribute(VertexId v, AttributeId a) {
  attrs_.push_back(EncodedAttribute{v, a});
}

void Multigraph::Builder::EnsureVertexCount(size_t n) {
  min_vertices_ = std::max(min_vertices_, n);
}

Multigraph Multigraph::Builder::Build(ThreadPool* pool) && {
  Multigraph g;

  size_t num_vertices = min_vertices_;
  for (const EncodedEdge& e : edges_) {
    num_vertices = std::max<size_t>(num_vertices, e.subject + 1);
    num_vertices = std::max<size_t>(num_vertices, e.object + 1);
    g.num_edge_types_ =
        std::max<size_t>(g.num_edge_types_, e.predicate + 1);
  }
  for (const EncodedAttribute& a : attrs_) {
    num_vertices = std::max<size_t>(num_vertices, a.subject + 1);
    g.num_attributes_ = std::max<size_t>(g.num_attributes_, a.attribute + 1);
  }
  g.num_vertices_ = num_vertices;

  // Deduplicate edges: RDF data is a set of statements.
  std::sort(edges_.begin(), edges_.end(),
            [](const EncodedEdge& a, const EncodedEdge& b) {
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.object != b.object) return a.object < b.object;
              return a.predicate < b.predicate;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const EncodedEdge& a, const EncodedEdge& b) {
                             return a.subject == b.subject &&
                                    a.object == b.object &&
                                    a.predicate == b.predicate;
                           }),
               edges_.end());
  g.num_edges_ = edges_.size();

  // The three CSRs (out-adjacency, in-adjacency, attributes) are
  // independent; each is deterministic on its own (BuildAdjacency fully
  // re-sorts its input, so starting order is irrelevant), which keeps the
  // artifact bit-identical between the serial and concurrent paths. Only
  // the concurrent path needs a second edge buffer; the serial path
  // re-sorts `edges_` in place for the second direction.
  auto build_attrs = [this, num_vertices, &g] {
    std::sort(attrs_.begin(), attrs_.end(),
              [](const EncodedAttribute& a, const EncodedAttribute& b) {
                if (a.subject != b.subject) return a.subject < b.subject;
                return a.attribute < b.attribute;
              });
    attrs_.erase(std::unique(attrs_.begin(), attrs_.end(),
                             [](const EncodedAttribute& a,
                                const EncodedAttribute& b) {
                               return a.subject == b.subject &&
                                      a.attribute == b.attribute;
                             }),
                 attrs_.end());
    std::vector<uint64_t> offsets(num_vertices + 1, 0);
    for (const EncodedAttribute& a : attrs_) {
      ++offsets[a.subject + 1];
    }
    for (size_t v = 0; v < num_vertices; ++v) {
      offsets[v + 1] += offsets[v];
    }
    std::vector<AttributeId> attr_pool;
    attr_pool.reserve(attrs_.size());
    for (const EncodedAttribute& a : attrs_) {
      attr_pool.push_back(a.attribute);
    }
    g.attr_offsets_ = std::move(offsets);
    g.attr_pool_ = std::move(attr_pool);
  };

  if (pool != nullptr) {
    std::vector<EncodedEdge> in_edges = edges_;
    pool->Submit([this, num_vertices, &g] {
      BuildAdjacency(&edges_, Direction::kOut, num_vertices,
                     &g.adj_[static_cast<int>(Direction::kOut)]);
    });
    pool->Submit([&in_edges, num_vertices, &g] {
      BuildAdjacency(&in_edges, Direction::kIn, num_vertices,
                     &g.adj_[static_cast<int>(Direction::kIn)]);
    });
    pool->Submit(build_attrs);
    pool->Wait();
  } else {
    BuildAdjacency(&edges_, Direction::kOut, num_vertices,
                   &g.adj_[static_cast<int>(Direction::kOut)]);
    BuildAdjacency(&edges_, Direction::kIn, num_vertices,
                   &g.adj_[static_cast<int>(Direction::kIn)]);
    build_attrs();
  }

  return g;
}

void Multigraph::BuildAdjacency(std::vector<EncodedEdge>* edges, Direction d,
                                size_t num_vertices, Adjacency* adj) {
  const bool out = (d == Direction::kOut);
  auto key = [out](const EncodedEdge& e) {
    return out ? e.subject : e.object;
  };
  auto nbr = [out](const EncodedEdge& e) {
    return out ? e.object : e.subject;
  };
  std::sort(edges->begin(), edges->end(),
            [&](const EncodedEdge& a, const EncodedEdge& b) {
              if (key(a) != key(b)) return key(a) < key(b);
              if (nbr(a) != nbr(b)) return nbr(a) < nbr(b);
              return a.predicate < b.predicate;
            });

  std::vector<uint64_t> offsets(num_vertices + 1, 0);
  std::vector<GroupEntry> groups;
  std::vector<EdgeTypeId> types;
  types.reserve(edges->size());

  size_t i = 0;
  while (i < edges->size()) {
    VertexId v = key((*edges)[i]);
    VertexId n = nbr((*edges)[i]);
    GroupEntry group;
    group.neighbor = n;
    group.type_begin = static_cast<uint32_t>(types.size());
    size_t j = i;
    while (j < edges->size() && key((*edges)[j]) == v &&
           nbr((*edges)[j]) == n) {
      types.push_back((*edges)[j].predicate);
      ++j;
    }
    group.type_count = static_cast<uint32_t>(j - i);
    groups.push_back(group);
    ++offsets[v + 1];
    i = j;
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    offsets[v + 1] += offsets[v];
  }

  adj->offsets = std::move(offsets);
  adj->groups = std::move(groups);
  adj->types = std::move(types);
}

Multigraph Multigraph::FromDataset(const EncodedDataset& dataset,
                                   ThreadPool* pool) {
  Builder builder;
  builder.EnsureVertexCount(dataset.dictionaries.vertices().size());
  for (const EncodedEdge& e : dataset.edges) {
    builder.AddEdge(e.subject, e.predicate, e.object);
  }
  for (const EncodedAttribute& a : dataset.attributes) {
    builder.AddAttribute(a.subject, a.attribute);
  }
  Multigraph g = std::move(builder).Build(pool);
  // The dictionaries are authoritative for id-space sizes: an edge type or
  // attribute may exist in the dictionary without surviving deduplication.
  g.num_edge_types_ =
      std::max(g.num_edge_types_, dataset.dictionaries.edge_types().size());
  g.num_attributes_ =
      std::max(g.num_attributes_, dataset.dictionaries.attributes().size());
  return g;
}

std::span<const EdgeTypeId> Multigraph::MultiEdge(VertexId v, Direction d,
                                                  VertexId neighbor) const {
  const Adjacency& a = adj_[static_cast<int>(d)];
  const GroupEntry* begin = a.groups.data() + a.offsets[v];
  const GroupEntry* end = a.groups.data() + a.offsets[v + 1];
  const GroupEntry* it = std::lower_bound(
      begin, end, neighbor, [](const GroupEntry& g, VertexId n) {
        return g.neighbor < n;
      });
  if (it == end || it->neighbor != neighbor) return {};
  return {a.types.data() + it->type_begin, it->type_count};
}

bool Multigraph::HasEdge(VertexId s, EdgeTypeId t, VertexId o) const {
  std::span<const EdgeTypeId> types = MultiEdge(s, Direction::kOut, o);
  return std::binary_search(types.begin(), types.end(), t);
}

bool Multigraph::HasMultiEdgeSuperset(
    VertexId v, Direction d, VertexId neighbor,
    std::span<const EdgeTypeId> types) const {
  std::span<const EdgeTypeId> have = MultiEdge(v, d, neighbor);
  if (have.size() < types.size()) return false;
  // Both sides sorted: linear merge containment test.
  size_t i = 0;
  for (EdgeTypeId t : types) {
    while (i < have.size() && have[i] < t) ++i;
    if (i == have.size() || have[i] != t) return false;
    ++i;
  }
  return true;
}

uint64_t Multigraph::ByteSize() const {
  uint64_t total = 0;
  for (const Adjacency& a : adj_) {
    total += a.offsets.ByteSize();
    total += a.groups.ByteSize();
    total += a.types.ByteSize();
  }
  total += attr_offsets_.ByteSize();
  total += attr_pool_.ByteSize();
  return total;
}

bool Multigraph::Adjacency::operator==(const Adjacency& o) const {
  if (!(offsets == o.offsets) || !(types == o.types)) return false;
  if (groups.size() != o.groups.size()) return false;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].neighbor != o.groups[i].neighbor ||
        groups[i].type_begin != o.groups[i].type_begin ||
        groups[i].type_count != o.groups[i].type_count) {
      return false;
    }
  }
  return true;
}

bool Multigraph::operator==(const Multigraph& o) const {
  return num_vertices_ == o.num_vertices_ && num_edges_ == o.num_edges_ &&
         num_edge_types_ == o.num_edge_types_ &&
         num_attributes_ == o.num_attributes_ && adj_[0] == o.adj_[0] &&
         adj_[1] == o.adj_[1] && attr_offsets_ == o.attr_offsets_ &&
         attr_pool_ == o.attr_pool_;
}

void Multigraph::Save(std::ostream& os) const {
  serde::WriteHeader(os, kGraphMagic, kGraphVersion);
  serde::WritePod<uint64_t>(os, num_vertices_);
  serde::WritePod<uint64_t>(os, num_edges_);
  serde::WritePod<uint64_t>(os, num_edge_types_);
  serde::WritePod<uint64_t>(os, num_attributes_);
  for (const Adjacency& a : adj_) {
    serde::WriteSpan(os, a.offsets.span());
    serde::WritePod<uint64_t>(os, a.groups.size());
    for (const GroupEntry& g : a.groups) {
      serde::WritePod(os, g.neighbor);
      serde::WritePod(os, g.type_begin);
      serde::WritePod(os, g.type_count);
    }
    serde::WriteSpan(os, a.types.span());
  }
  serde::WriteSpan(os, attr_offsets_.span());
  serde::WriteSpan(os, attr_pool_.span());
}

Status Multigraph::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(serde::CheckHeader(is, kGraphMagic, kGraphVersion));
  uint64_t v64 = 0;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v64));
  num_vertices_ = v64;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &num_edges_));
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v64));
  num_edge_types_ = v64;
  AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &v64));
  num_attributes_ = v64;
  for (Adjacency& a : adj_) {
    std::vector<uint64_t> offsets;
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &offsets));
    uint64_t n = 0;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
    if (n > serde::kMaxPayloadBytes / sizeof(GroupEntry)) {
      return Status::Corruption("implausible group count");
    }
    // Grown by push_back, not resize(n): a forged count on a truncated
    // stream fails at the first missing element instead of allocating the
    // full claimed size up front.
    std::vector<GroupEntry> groups;
    for (uint64_t i = 0; i < n; ++i) {
      GroupEntry g;
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &g.neighbor));
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &g.type_begin));
      AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &g.type_count));
      groups.push_back(g);
    }
    std::vector<EdgeTypeId> types;
    AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &types));
    if (offsets.size() != num_vertices_ + 1) {
      return Status::Corruption("adjacency offsets size mismatch");
    }
    a.offsets = std::move(offsets);
    a.groups = std::move(groups);
    a.types = std::move(types);
  }
  std::vector<uint64_t> attr_offsets;
  std::vector<AttributeId> attr_pool;
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_offsets));
  AMBER_RETURN_IF_ERROR(serde::ReadVector(is, &attr_pool));
  if (attr_offsets.size() != num_vertices_ + 1) {
    return Status::Corruption("attribute offsets size mismatch");
  }
  attr_offsets_ = std::move(attr_offsets);
  attr_pool_ = std::move(attr_pool);
  return Status::OK();
}

void Multigraph::SaveAmf(amf::Writer* w) const {
  MgMetaPod meta{num_vertices_, num_edges_, num_edge_types_,
                 num_attributes_};
  w->AddPod(kAmfMgMeta, meta);
  for (int d = 0; d < 2; ++d) {
    const uint32_t base = kAmfMgAdjBase + d * 0x10;
    w->AddArray(base + 0, adj_[d].offsets.span());
    w->AddArray(base + 1, adj_[d].groups.span());
    w->AddArray(base + 2, adj_[d].types.span());
  }
  w->AddArray(kAmfMgAttrOffsets, attr_offsets_.span());
  w->AddArray(kAmfMgAttrPool, attr_pool_.span());
}

Status Multigraph::LoadAmf(const amf::Reader& r) {
  MgMetaPod meta;
  AMBER_RETURN_IF_ERROR(r.Pod(kAmfMgMeta, &meta));
  if (meta.num_vertices >= serde::kMaxPayloadBytes) {
    return Status::Corruption("implausible vertex count in AMF meta");
  }
  num_vertices_ = meta.num_vertices;
  num_edges_ = meta.num_edges;
  num_edge_types_ = meta.num_edge_types;
  num_attributes_ = meta.num_attributes;
  for (int d = 0; d < 2; ++d) {
    const uint32_t base = kAmfMgAdjBase + d * 0x10;
    AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> offsets,
                           r.Array<uint64_t>(base + 0));
    AMBER_ASSIGN_OR_RETURN(std::span<const GroupEntry> groups,
                           r.Array<GroupEntry>(base + 1));
    AMBER_ASSIGN_OR_RETURN(std::span<const EdgeTypeId> types,
                           r.Array<EdgeTypeId>(base + 2));
    AMBER_RETURN_IF_ERROR(ValidateOffsets(offsets, num_vertices_ + 1,
                                          groups.size(), "adjacency"));
    // Per-group ranges index into the types pool and neighbor ids index
    // the vertex space; a crafted artifact must not be able to point query-
    // time reads outside either.
    for (const GroupEntry& g : groups) {
      if (g.neighbor >= num_vertices_ ||
          static_cast<uint64_t>(g.type_begin) + g.type_count >
              types.size()) {
        return Status::Corruption("adjacency group out of range");
      }
    }
    adj_[d].offsets = ArrayRef<uint64_t>::Borrowed(offsets);
    adj_[d].groups = ArrayRef<GroupEntry>::Borrowed(groups);
    adj_[d].types = ArrayRef<EdgeTypeId>::Borrowed(types);
  }
  AMBER_ASSIGN_OR_RETURN(std::span<const uint64_t> attr_offsets,
                         r.Array<uint64_t>(kAmfMgAttrOffsets));
  AMBER_ASSIGN_OR_RETURN(std::span<const AttributeId> attr_pool,
                         r.Array<AttributeId>(kAmfMgAttrPool));
  AMBER_RETURN_IF_ERROR(ValidateOffsets(attr_offsets, num_vertices_ + 1,
                                        attr_pool.size(), "attribute"));
  attr_offsets_ = ArrayRef<uint64_t>::Borrowed(attr_offsets);
  attr_pool_ = ArrayRef<AttributeId>::Borrowed(attr_pool);
  return Status::OK();
}

}  // namespace amber
