#include "rdf/literal_value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace amber {

namespace {

constexpr std::string_view kXsdPrefix = "http://www.w3.org/2001/XMLSchema#";

}  // namespace

std::string_view CompareOpToken(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      break;
  }
  return op;
}

bool IsNumericXsdDatatype(std::string_view datatype_iri) {
  if (datatype_iri.size() <= kXsdPrefix.size() ||
      datatype_iri.compare(0, kXsdPrefix.size(), kXsdPrefix) != 0) {
    return false;
  }
  std::string_view local = datatype_iri.substr(kXsdPrefix.size());
  return local == "integer" || local == "decimal" || local == "double" ||
         local == "float" || local == "int" || local == "long" ||
         local == "short" || local == "byte" || local == "unsignedInt" ||
         local == "unsignedLong" || local == "unsignedShort" ||
         local == "unsignedByte" || local == "nonNegativeInteger" ||
         local == "nonPositiveInteger" || local == "negativeInteger" ||
         local == "positiveInteger";
}

std::string LiteralValue::ToString() const {
  if (!numeric) return "\"" + text + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", number);
  return buf;
}

LiteralValue LiteralValueOf(const Term& literal) {
  LiteralValue v;
  if (literal.lang.empty() && IsNumericXsdDatatype(literal.datatype) &&
      !literal.value.empty()) {
    char* end = nullptr;
    double parsed = std::strtod(literal.value.c_str(), &end);
    // Non-finite values ("NaN"/"INF", which strtod accepts) stay strings:
    // NaN has no place in a sorted column (comparator UB) and IEEE NaN
    // comparison semantics would diverge from SPARQL's.
    if (end == literal.value.c_str() + literal.value.size() &&
        std::isfinite(parsed)) {
      v.numeric = true;
      v.number = parsed;
      return v;
    }
  }
  v.text = literal.value;
  return v;
}

bool SatisfiesComparison(const LiteralValueView& have, CompareOp op,
                         const LiteralValueView& want) {
  // Mixed kinds are a SPARQL type error: the comparison (any operator,
  // including '!=') is unsatisfied.
  if (have.numeric != want.numeric) return false;
  int cmp;
  if (have.numeric) {
    cmp = have.number < want.number ? -1 : (have.number > want.number ? 1 : 0);
  } else {
    int c = have.text.compare(want.text);
    cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

bool SatisfiesAll(const LiteralValueView& have,
                  std::span<const ValueComparison> cmps) {
  for (const ValueComparison& c : cmps) {
    if (!SatisfiesComparison(have, c.op, c.value)) return false;
  }
  return true;
}

}  // namespace amber
