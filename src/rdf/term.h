// RDF term and triple model (Section 2.1 of the paper).
//
// A term is an IRI, a literal (with optional datatype or language tag), or a
// blank node. Triples are <subject, predicate, object> with the W3C
// restrictions: subjects are IRIs or blank nodes, predicates are IRIs,
// objects are any term.

#ifndef AMBER_RDF_TERM_H_
#define AMBER_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>

namespace amber {

/// Kind of an RDF term.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// \brief An RDF term: IRI, literal, or blank node.
///
/// For IRIs, `value` is the IRI string without angle brackets. For literals,
/// `value` is the lexical form, `datatype` the (optional) datatype IRI and
/// `lang` the (optional) language tag; at most one of the two is non-empty.
/// For blank nodes, `value` is the label without the "_:" prefix.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string value;
  std::string datatype;
  std::string lang;

  Term() = default;

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.value = std::move(iri);
    return t;
  }

  static Term Literal(std::string lexical, std::string datatype_iri = "",
                      std::string lang_tag = "") {
    Term t;
    t.kind = TermKind::kLiteral;
    t.value = std::move(lexical);
    t.datatype = std::move(datatype_iri);
    t.lang = std::move(lang_tag);
    return t;
  }

  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.value = std::move(label);
    return t;
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  /// True for IRIs and blank nodes — the terms that become multigraph
  /// vertices (literals become vertex attributes instead, Section 2.1.1).
  bool is_resource() const { return !is_literal(); }

  /// Canonical N-Triples token: `<iri>`, `"lit"@en`, `"90000"^^<dt>`,
  /// `_:b0`. Used both for output and as the canonical dictionary key.
  std::string ToNTriples() const;

  bool operator==(const Term& o) const {
    return kind == o.kind && value == o.value && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const {
    return std::tie(kind, value, datatype, lang) <
           std::tie(o.kind, o.value, o.datatype, o.lang);
  }
};

/// \brief One RDF statement <subject, predicate, object>.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  Triple() = default;
  Triple(Term s, Term p, Term o)
      : subject(std::move(s)),
        predicate(std::move(p)),
        object(std::move(o)) {}

  /// One N-Triples line, including the terminating " ."
  std::string ToNTriples() const;

  bool operator==(const Triple& o) const {
    return subject == o.subject && predicate == o.predicate &&
           object == o.object;
  }
  bool operator<(const Triple& o) const {
    return std::tie(subject, predicate, object) <
           std::tie(o.subject, o.predicate, o.object);
  }
};

}  // namespace amber

#endif  // AMBER_RDF_TERM_H_
