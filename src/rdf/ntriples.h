// N-Triples reader and writer (the on-disk format the paper's datasets ship
// in). The parser is line-oriented and handles IRIs, blank nodes, plain /
// typed / language-tagged literals, escape sequences including \uXXXX and
// \UXXXXXXXX, comments and blank lines. Errors carry the offending line
// number.

#ifndef AMBER_RDF_NTRIPLES_H_
#define AMBER_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace amber {

/// \brief Parser for the N-Triples serialization of RDF.
class NTriplesParser {
 public:
  /// Parses one N-Triples line. Returns true and fills `*triple` when the
  /// line holds a statement; returns false for blank/comment lines; returns
  /// an error Status on malformed input.
  static Result<bool> ParseLine(std::string_view line, Triple* triple);

  /// Parses a whole document held in memory.
  static Result<std::vector<Triple>> ParseString(std::string_view text);

  /// Parses an N-Triples file from disk.
  static Result<std::vector<Triple>> ParseFile(const std::string& path);
};

/// \brief Writer emitting canonical N-Triples.
class NTriplesWriter {
 public:
  /// Serializes `triples` to `os`, one statement per line.
  static void Write(std::ostream& os, const std::vector<Triple>& triples);

  /// Serializes `triples` to `path`. Overwrites the file.
  static Status WriteFile(const std::string& path,
                          const std::vector<Triple>& triples);
};

}  // namespace amber

#endif  // AMBER_RDF_NTRIPLES_H_
