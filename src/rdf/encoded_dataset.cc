#include "rdf/encoded_dataset.h"

namespace amber {

namespace {
// Separator between predicate IRI and literal token in attribute keys.
// \x1f (ASCII unit separator) cannot appear in an IRI.
constexpr char kAttrSep = '\x1f';

// AMF section-id bases of the dictionaries (two sections each:
// string blob, offset table).
constexpr uint32_t kAmfVertexDict = 0x5010;
constexpr uint32_t kAmfEdgeTypeDict = 0x5020;
constexpr uint32_t kAmfAttributeDict = 0x5030;
constexpr uint32_t kAmfAttrPredDict = 0x5040;
}  // namespace

std::string RdfDictionaries::AttributeKey(const Term& predicate,
                                          const Term& literal) {
  std::string key = predicate.value;
  key += kAttrSep;
  key += literal.ToNTriples();
  return key;
}

std::string RdfDictionaries::AttributeDescription(AttributeId a) const {
  std::string_view key = attributes_.Lookup(a);
  size_t pos = key.find(kAttrSep);
  if (pos == std::string_view::npos) return std::string(key);
  std::string out;
  out.reserve(key.size() + 8);
  out += '<';
  out.append(key.substr(0, pos));
  out += "> -> ";
  out.append(key.substr(pos + 1));
  return out;
}

void RdfDictionaries::Save(std::ostream& os) const {
  vertices_.Save(os);
  edge_types_.Save(os);
  attributes_.Save(os);
  attr_predicates_.Save(os);
}

Status RdfDictionaries::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(vertices_.Load(is));
  AMBER_RETURN_IF_ERROR(edge_types_.Load(is));
  AMBER_RETURN_IF_ERROR(attributes_.Load(is));
  return attr_predicates_.Load(is);
}

void RdfDictionaries::SaveAmf(amf::Writer* w) const {
  vertices_.SaveAmf(w, kAmfVertexDict);
  edge_types_.SaveAmf(w, kAmfEdgeTypeDict);
  attributes_.SaveAmf(w, kAmfAttributeDict);
  attr_predicates_.SaveAmf(w, kAmfAttrPredDict);
}

Status RdfDictionaries::LoadAmf(const amf::Reader& r) {
  AMBER_RETURN_IF_ERROR(vertices_.LoadAmf(r, kAmfVertexDict));
  AMBER_RETURN_IF_ERROR(edge_types_.LoadAmf(r, kAmfEdgeTypeDict));
  AMBER_RETURN_IF_ERROR(attributes_.LoadAmf(r, kAmfAttributeDict));
  return attr_predicates_.LoadAmf(r, kAmfAttrPredDict);
}

Result<EncodedDataset> EncodedDataset::Encode(
    const std::vector<Triple>& triples) {
  EncodedDataset out;
  out.edges.reserve(triples.size());
  for (const Triple& t : triples) {
    if (t.subject.is_literal()) {
      return Status::InvalidArgument("literal in subject position: " +
                                     t.ToNTriples());
    }
    if (!t.predicate.is_iri()) {
      return Status::InvalidArgument("predicate must be an IRI: " +
                                     t.ToNTriples());
    }
    VertexId s = out.dictionaries.vertices().GetOrAdd(
        RdfDictionaries::VertexKey(t.subject));
    if (t.object.is_literal()) {
      AttributeId a = out.dictionaries.attributes().GetOrAdd(
          RdfDictionaries::AttributeKey(t.predicate, t.object));
      if (a == out.attribute_values.size()) {
        // First sight of this <predicate, literal> pair: record its typed
        // value and intern the predicate into the attribute-predicate
        // dictionary (Table 2's id spaces stay untouched).
        AttrPredId p = out.dictionaries.attr_predicates().GetOrAdd(
            RdfDictionaries::PredicateKey(t.predicate));
        out.attribute_values.push_back(
            AttributeValueInfo{p, LiteralValueOf(t.object)});
      }
      out.attributes.push_back(EncodedAttribute{s, a});
    } else {
      EdgeTypeId p = out.dictionaries.edge_types().GetOrAdd(
          RdfDictionaries::PredicateKey(t.predicate));
      VertexId o = out.dictionaries.vertices().GetOrAdd(
          RdfDictionaries::VertexKey(t.object));
      out.edges.push_back(EncodedEdge{s, p, o});
    }
    ++out.num_triples;
  }
  return out;
}

}  // namespace amber
