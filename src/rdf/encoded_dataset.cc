#include "rdf/encoded_dataset.h"

namespace amber {

namespace {
// Separator between predicate IRI and literal token in attribute keys.
// \x1f (ASCII unit separator) cannot appear in an IRI.
constexpr char kAttrSep = '\x1f';
}  // namespace

std::string RdfDictionaries::AttributeKey(const Term& predicate,
                                          const Term& literal) {
  std::string key = predicate.value;
  key += kAttrSep;
  key += literal.ToNTriples();
  return key;
}

std::string RdfDictionaries::AttributeDescription(AttributeId a) const {
  const std::string& key = attributes_.Lookup(a);
  size_t pos = key.find(kAttrSep);
  if (pos == std::string::npos) return key;
  std::string out;
  out.reserve(key.size() + 8);
  out += '<';
  out.append(key, 0, pos);
  out += "> -> ";
  out.append(key, pos + 1, std::string::npos);
  return out;
}

void RdfDictionaries::Save(std::ostream& os) const {
  vertices_.Save(os);
  edge_types_.Save(os);
  attributes_.Save(os);
}

Status RdfDictionaries::Load(std::istream& is) {
  AMBER_RETURN_IF_ERROR(vertices_.Load(is));
  AMBER_RETURN_IF_ERROR(edge_types_.Load(is));
  return attributes_.Load(is);
}

Result<EncodedDataset> EncodedDataset::Encode(
    const std::vector<Triple>& triples) {
  EncodedDataset out;
  out.edges.reserve(triples.size());
  for (const Triple& t : triples) {
    if (t.subject.is_literal()) {
      return Status::InvalidArgument("literal in subject position: " +
                                     t.ToNTriples());
    }
    if (!t.predicate.is_iri()) {
      return Status::InvalidArgument("predicate must be an IRI: " +
                                     t.ToNTriples());
    }
    VertexId s = out.dictionaries.vertices().GetOrAdd(
        RdfDictionaries::VertexKey(t.subject));
    if (t.object.is_literal()) {
      AttributeId a = out.dictionaries.attributes().GetOrAdd(
          RdfDictionaries::AttributeKey(t.predicate, t.object));
      out.attributes.push_back(EncodedAttribute{s, a});
    } else {
      EdgeTypeId p = out.dictionaries.edge_types().GetOrAdd(
          RdfDictionaries::PredicateKey(t.predicate));
      VertexId o = out.dictionaries.vertices().GetOrAdd(
          RdfDictionaries::VertexKey(t.object));
      out.edges.push_back(EncodedEdge{s, p, o});
    }
    ++out.num_triples;
  }
  return out;
}

}  // namespace amber
