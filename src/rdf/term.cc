#include "rdf/term.h"

#include "util/string_util.h"

namespace amber {

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + EscapeNTriples(value) + ">";
    case TermKind::kBlank:
      return "_:" + value;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriples(value) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + EscapeNTriples(datatype) + ">";
      }
      return out;
    }
  }
  return "";
}

std::string Triple::ToNTriples() const {
  return subject.ToNTriples() + " " + predicate.ToNTriples() + " " +
         object.ToNTriples() + " .";
}

}  // namespace amber
