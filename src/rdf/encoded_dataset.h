// The offline encoding step of Section 2.1.1: an RDF tripleset becomes
//   * vertex ids        for subject / object IRIs and blank nodes,
//   * edge-type ids     for predicates of IRI-object triples,
//   * attribute ids     for <predicate, literal> pairs of literal-object
//                       triples (assigned to the subject vertex).
//
// The three dictionaries correspond exactly to Table 2 of the paper.

#ifndef AMBER_RDF_ENCODED_DATASET_H_
#define AMBER_RDF_ENCODED_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/status.h"

namespace amber {

/// Vertex identifier in the data multigraph (maps to a subject/object IRI).
using VertexId = uint32_t;
/// Edge-type identifier (maps to a predicate IRI).
using EdgeTypeId = uint32_t;
/// Vertex-attribute identifier (maps to a <predicate, literal> pair).
using AttributeId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// One dictionary-encoded edge (triple with IRI/blank object).
struct EncodedEdge {
  VertexId subject;
  EdgeTypeId predicate;
  VertexId object;
};

/// One dictionary-encoded vertex attribute (triple with literal object).
struct EncodedAttribute {
  VertexId subject;
  AttributeId attribute;
};

/// \brief The three mapping dictionaries Mv, Me, Ma of the paper (Table 2).
class RdfDictionaries {
 public:
  RdfDictionaries() = default;
  RdfDictionaries(RdfDictionaries&&) = default;
  RdfDictionaries& operator=(RdfDictionaries&&) = default;

  /// Canonical dictionary key of a vertex term (IRI or blank node).
  static std::string VertexKey(const Term& term) { return term.ToNTriples(); }
  /// Canonical dictionary key of a predicate term.
  static std::string PredicateKey(const Term& term) { return term.value; }
  /// Canonical dictionary key of a <predicate, literal> attribute pair.
  static std::string AttributeKey(const Term& predicate, const Term& literal);

  StringDictionary& vertices() { return vertices_; }
  const StringDictionary& vertices() const { return vertices_; }
  StringDictionary& edge_types() { return edge_types_; }
  const StringDictionary& edge_types() const { return edge_types_; }
  StringDictionary& attributes() { return attributes_; }
  const StringDictionary& attributes() const { return attributes_; }

  /// Inverse vertex mapping Mv^-1: vertex id -> N-Triples token.
  std::string_view VertexToken(VertexId v) const {
    return vertices_.Lookup(v);
  }
  /// Inverse edge-type mapping Me^-1: edge-type id -> predicate IRI.
  std::string_view PredicateIri(EdgeTypeId t) const {
    return edge_types_.Lookup(t);
  }
  /// Inverse attribute mapping Ma^-1, rendered "<pred> -> <literal token>".
  std::string AttributeDescription(AttributeId a) const;

  uint64_t ByteSize() const {
    return vertices_.ByteSize() + edge_types_.ByteSize() +
           attributes_.ByteSize();
  }

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  /// AMF sections of the three dictionaries (see docs/ARCHITECTURE.md,
  /// "Artifact format").
  void SaveAmf(amf::Writer* w) const;
  Status LoadAmf(const amf::Reader& r);

 private:
  StringDictionary vertices_;
  StringDictionary edge_types_;
  StringDictionary attributes_;
};

/// \brief Dictionary-encoded RDF dataset: the input of multigraph
/// construction (offline stage, Section 3).
struct EncodedDataset {
  RdfDictionaries dictionaries;
  std::vector<EncodedEdge> edges;
  std::vector<EncodedAttribute> attributes;
  uint64_t num_triples = 0;

  /// Encodes a tripleset. Every triple contributes either one edge (IRI /
  /// blank object) or one vertex attribute (literal object). Literal
  /// subjects are rejected (W3C forbids them).
  static Result<EncodedDataset> Encode(const std::vector<Triple>& triples);
};

}  // namespace amber

#endif  // AMBER_RDF_ENCODED_DATASET_H_
