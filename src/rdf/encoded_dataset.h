// The offline encoding step of Section 2.1.1: an RDF tripleset becomes
//   * vertex ids        for subject / object IRIs and blank nodes,
//   * edge-type ids     for predicates of IRI-object triples,
//   * attribute ids     for <predicate, literal> pairs of literal-object
//                       triples (assigned to the subject vertex).
//
// The first three dictionaries correspond exactly to Table 2 of the paper.
// Beyond the paper, the encoder also surfaces *typed* literal values: a
// fourth dictionary of attribute predicates (the predicate IRIs of
// literal-object triples, disjoint from the edge-type id space so Table 2
// semantics are untouched) and, per attribute id, the predicate plus the
// comparable LiteralValue. This is what FILTER pushdown and the ValueIndex
// are built from.

#ifndef AMBER_RDF_ENCODED_DATASET_H_
#define AMBER_RDF_ENCODED_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/literal_value.h"
#include "rdf/term.h"
#include "util/status.h"

namespace amber {

/// Vertex identifier in the data multigraph (maps to a subject/object IRI).
using VertexId = uint32_t;
/// Edge-type identifier (maps to a predicate IRI).
using EdgeTypeId = uint32_t;
/// Vertex-attribute identifier (maps to a <predicate, literal> pair).
using AttributeId = uint32_t;
/// Attribute-predicate identifier (maps to the predicate IRI of a
/// literal-object triple; independent of the EdgeTypeId space).
using AttrPredId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// One dictionary-encoded edge (triple with IRI/blank object).
struct EncodedEdge {
  VertexId subject;
  EdgeTypeId predicate;
  VertexId object;
};

/// One dictionary-encoded vertex attribute (triple with literal object).
struct EncodedAttribute {
  VertexId subject;
  AttributeId attribute;
};

/// Typed view of one attribute id: its predicate (AttrPredId) and the
/// comparable value of its literal. Indexed by AttributeId.
struct AttributeValueInfo {
  AttrPredId predicate = kInvalidId;
  LiteralValue value;

  bool operator==(const AttributeValueInfo&) const = default;
};

/// \brief The three mapping dictionaries Mv, Me, Ma of the paper (Table 2),
/// plus the attribute-predicate dictionary backing FILTER pushdown.
class RdfDictionaries {
 public:
  RdfDictionaries() = default;
  RdfDictionaries(RdfDictionaries&&) = default;
  RdfDictionaries& operator=(RdfDictionaries&&) = default;

  /// Canonical dictionary key of a vertex term (IRI or blank node).
  static std::string VertexKey(const Term& term) { return term.ToNTriples(); }
  /// Canonical dictionary key of a predicate term.
  static std::string PredicateKey(const Term& term) { return term.value; }
  /// Canonical dictionary key of a <predicate, literal> attribute pair.
  static std::string AttributeKey(const Term& predicate, const Term& literal);

  StringDictionary& vertices() { return vertices_; }
  const StringDictionary& vertices() const { return vertices_; }
  StringDictionary& edge_types() { return edge_types_; }
  const StringDictionary& edge_types() const { return edge_types_; }
  StringDictionary& attributes() { return attributes_; }
  const StringDictionary& attributes() const { return attributes_; }
  /// Predicate IRIs of literal-object triples (the FILTER-addressable
  /// predicates). Keyed like edge types (PredicateKey), own id space.
  StringDictionary& attr_predicates() { return attr_predicates_; }
  const StringDictionary& attr_predicates() const { return attr_predicates_; }

  /// Inverse vertex mapping Mv^-1: vertex id -> N-Triples token.
  std::string_view VertexToken(VertexId v) const {
    return vertices_.Lookup(v);
  }
  /// Inverse edge-type mapping Me^-1: edge-type id -> predicate IRI.
  std::string_view PredicateIri(EdgeTypeId t) const {
    return edge_types_.Lookup(t);
  }
  /// Inverse attribute mapping Ma^-1, rendered "<pred> -> <literal token>".
  std::string AttributeDescription(AttributeId a) const;
  /// Inverse attribute-predicate mapping: id -> predicate IRI.
  std::string_view AttrPredicateIri(AttrPredId p) const {
    return attr_predicates_.Lookup(p);
  }

  uint64_t ByteSize() const {
    return vertices_.ByteSize() + edge_types_.ByteSize() +
           attributes_.ByteSize() + attr_predicates_.ByteSize();
  }

  void Save(std::ostream& os) const;
  Status Load(std::istream& is);

  /// AMF sections of the three dictionaries (see docs/ARCHITECTURE.md,
  /// "Artifact format").
  void SaveAmf(amf::Writer* w) const;
  Status LoadAmf(const amf::Reader& r);

 private:
  StringDictionary vertices_;
  StringDictionary edge_types_;
  StringDictionary attributes_;
  StringDictionary attr_predicates_;
};

/// \brief Dictionary-encoded RDF dataset: the input of multigraph
/// construction (offline stage, Section 3).
struct EncodedDataset {
  RdfDictionaries dictionaries;
  std::vector<EncodedEdge> edges;
  std::vector<EncodedAttribute> attributes;
  /// Typed value of each attribute id (parallel to the attribute
  /// dictionary); source data for the ValueIndex and the baselines'
  /// residual FILTER checks.
  std::vector<AttributeValueInfo> attribute_values;
  uint64_t num_triples = 0;

  /// Encodes a tripleset. Every triple contributes either one edge (IRI /
  /// blank object) or one vertex attribute (literal object). Literal
  /// subjects are rejected (W3C forbids them).
  static Result<EncodedDataset> Encode(const std::vector<Triple>& triples);
};

}  // namespace amber

#endif  // AMBER_RDF_ENCODED_DATASET_H_
