// String dictionaries: the key/value look-up tables of Table 2 in the paper.
//
// AMbER keeps three dictionaries (vertices, edge types, attributes); all are
// instances of StringDictionary, which maps strings to dense uint32 ids and
// back. Ids are assigned in first-seen order starting at 0.

#ifndef AMBER_RDF_DICTIONARY_H_
#define AMBER_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/serde.h"
#include "util/status.h"

namespace amber {

/// Dense id assigned to a dictionary entry.
using DictId = uint32_t;

/// Sentinel for "no id".
inline constexpr DictId kInvalidDictId = 0xFFFFFFFFu;

/// \brief Bidirectional string <-> dense-id dictionary.
///
/// Strings are stored once (in a deque, so references stay stable) and the
/// reverse map keys are string_views into that storage. Lookup is O(1)
/// expected; memory is one string copy plus hash-table overhead per entry.
class StringDictionary {
 public:
  StringDictionary() = default;

  // Movable but not copyable: the map holds views into our own storage.
  StringDictionary(StringDictionary&&) = default;
  StringDictionary& operator=(StringDictionary&&) = default;
  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  /// Returns the id of `key`, inserting it if absent.
  DictId GetOrAdd(std::string_view key) {
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    DictId id = static_cast<DictId>(items_.size());
    items_.emplace_back(key);
    index_.emplace(std::string_view(items_.back()), id);
    return id;
  }

  /// Returns the id of `key` if present.
  std::optional<DictId> Find(std::string_view key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(std::string_view key) const {
    return index_.find(key) != index_.end();
  }

  /// Inverse mapping M^-1: id -> string. `id` must be < size().
  const std::string& Lookup(DictId id) const { return items_.at(id); }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Approximate heap footprint in bytes (strings + hash table).
  uint64_t ByteSize() const {
    uint64_t total = 0;
    for (const auto& s : items_) total += s.capacity() + sizeof(std::string);
    total += index_.size() *
             (sizeof(std::string_view) + sizeof(DictId) + 2 * sizeof(void*));
    return total;
  }

  void Save(std::ostream& os) const {
    serde::WritePod<uint64_t>(os, items_.size());
    for (const auto& s : items_) serde::WriteString(os, s);
  }

  Status Load(std::istream& is) {
    items_.clear();
    index_.clear();
    uint64_t n = 0;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
    for (uint64_t i = 0; i < n; ++i) {
      std::string s;
      AMBER_RETURN_IF_ERROR(serde::ReadString(is, &s));
      if (Contains(s)) return Status::Corruption("duplicate dictionary key");
      GetOrAdd(s);
    }
    return Status::OK();
  }

 private:
  std::deque<std::string> items_;  // deque: stable references on push_back
  std::unordered_map<std::string_view, DictId> index_;
};

}  // namespace amber

#endif  // AMBER_RDF_DICTIONARY_H_
