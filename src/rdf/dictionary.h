// String dictionaries: the key/value look-up tables of Table 2 in the paper.
//
// AMbER keeps three dictionaries (vertices, edge types, attributes); all are
// instances of StringDictionary, which maps strings to dense uint32 ids and
// back. Ids are assigned in first-seen order starting at 0.
//
// A dictionary stores its entries in one of two places: an owned deque of
// strings (the Build()/stream-Load path), or a borrowed (blob, offsets)
// pair of spans into an mmap'ed AMF artifact — entry i is the byte range
// blob[offsets[i], offsets[i+1]). Only the hash index is (re)built on the
// borrowed path; the string bytes themselves are never copied. New keys
// added after a borrowed load (GetOrAdd on a live engine) go to the owned
// overflow with ids continuing past the borrowed range.

#ifndef AMBER_RDF_DICTIONARY_H_
#define AMBER_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/amf.h"
#include "util/serde.h"
#include "util/status.h"

namespace amber {

/// Dense id assigned to a dictionary entry.
using DictId = uint32_t;

/// Sentinel for "no id".
inline constexpr DictId kInvalidDictId = 0xFFFFFFFFu;

/// \brief Bidirectional string <-> dense-id dictionary.
///
/// Owned strings are stored once (in a deque, so references stay stable);
/// borrowed strings live in the mapped artifact. The reverse map keys are
/// string_views into whichever storage holds the entry. Lookup is O(1)
/// expected.
class StringDictionary {
 public:
  StringDictionary() = default;

  // Movable but not copyable: the map holds views into our own storage.
  StringDictionary(StringDictionary&&) = default;
  StringDictionary& operator=(StringDictionary&&) = default;
  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;

  /// Returns the id of `key`, inserting it if absent.
  DictId GetOrAdd(std::string_view key) {
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    DictId id = static_cast<DictId>(size());
    items_.emplace_back(key);
    index_.emplace(std::string_view(items_.back()), id);
    return id;
  }

  /// Returns the id of `key` if present.
  std::optional<DictId> Find(std::string_view key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(std::string_view key) const {
    return index_.find(key) != index_.end();
  }

  /// Inverse mapping M^-1: id -> string. `id` must be < size().
  std::string_view Lookup(DictId id) const {
    if (id < BorrowedCount()) {
      return std::string_view(
          blob_.data() + offsets_[id],
          static_cast<size_t>(offsets_[id + 1] - offsets_[id]));
    }
    return items_.at(id - BorrowedCount());
  }

  size_t size() const { return BorrowedCount() + items_.size(); }
  bool empty() const { return size() == 0; }

  /// Approximate footprint in bytes (strings + hash table; for borrowed
  /// dictionaries the string bytes live in the mapped file).
  uint64_t ByteSize() const {
    uint64_t total = blob_.size() + offsets_.size() * sizeof(uint64_t);
    for (const auto& s : items_) total += s.capacity() + sizeof(std::string);
    total += index_.size() *
             (sizeof(std::string_view) + sizeof(DictId) + 2 * sizeof(void*));
    return total;
  }

  void Save(std::ostream& os) const {
    serde::WritePod<uint64_t>(os, size());
    for (size_t i = 0; i < size(); ++i) {
      serde::WriteString(os, Lookup(static_cast<DictId>(i)));
    }
  }

  Status Load(std::istream& is) {
    Clear();
    uint64_t n = 0;
    AMBER_RETURN_IF_ERROR(serde::ReadPod(is, &n));
    for (uint64_t i = 0; i < n; ++i) {
      std::string s;
      AMBER_RETURN_IF_ERROR(serde::ReadString(is, &s));
      if (Contains(s)) return Status::Corruption("duplicate dictionary key");
      GetOrAdd(s);
    }
    return Status::OK();
  }

  /// Adds this dictionary's two AMF sections (string blob + offset table)
  /// under `base_id` + {0, 1}. The blob/offsets are materialized once into
  /// the writer when the dictionary owns its strings; a borrowed dictionary
  /// re-references the mapping it was loaded from.
  void SaveAmf(amf::Writer* w, uint32_t base_id) const {
    if (items_.empty() && BorrowedCount() > 0) {
      w->AddArray(base_id, blob_);
      w->AddArray(base_id + 1, offsets_);
      return;
    }
    std::vector<char> blob;
    std::vector<uint64_t> offsets;
    offsets.reserve(size() + 1);
    offsets.push_back(0);
    for (size_t i = 0; i < size(); ++i) {
      std::string_view s = Lookup(static_cast<DictId>(i));
      blob.insert(blob.end(), s.begin(), s.end());
      offsets.push_back(blob.size());
    }
    w->AddOwned(base_id, std::move(blob));
    w->AddOwned(base_id + 1, std::move(offsets));
  }

  /// Points this dictionary at the blob/offsets sections under `base_id`
  /// and rebuilds the hash index over the borrowed entries (the only
  /// per-entry work on the mmap path — no string bytes are copied).
  Status LoadAmf(const amf::Reader& r, uint32_t base_id) {
    Clear();
    AMBER_ASSIGN_OR_RETURN(blob_, r.Array<char>(base_id));
    AMBER_ASSIGN_OR_RETURN(offsets_, r.Array<uint64_t>(base_id + 1));
    AMBER_RETURN_IF_ERROR(
        amf::ValidateOffsets(offsets_, blob_.size(), "dictionary"));
    index_.reserve(BorrowedCount());
    for (size_t i = 0; i < BorrowedCount(); ++i) {
      if (!index_.emplace(Lookup(static_cast<DictId>(i)),
                          static_cast<DictId>(i))
               .second) {
        return Status::Corruption("duplicate dictionary key");
      }
    }
    return Status::OK();
  }

 private:
  size_t BorrowedCount() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  void Clear() {
    items_.clear();
    index_.clear();
    blob_ = {};
    offsets_ = {};
  }

  std::deque<std::string> items_;  // deque: stable references on push_back
  std::unordered_map<std::string_view, DictId> index_;
  // Borrowed storage (views into a mapped AMF file); empty in owned mode.
  std::span<const char> blob_;
  std::span<const uint64_t> offsets_;
};

}  // namespace amber

#endif  // AMBER_RDF_DICTIONARY_H_
