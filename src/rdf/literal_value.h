// Typed literal values: the comparable value domain behind FILTER
// predicates.
//
// The paper's query fragment only ever *equates* literals (a
// <predicate, literal> pair is an opaque attribute id), so ordering never
// mattered. FILTER(?age > 25) needs an order, which means literals must be
// classified at encode time: a literal whose datatype is an XSD numeric
// type and whose lexical form parses as a number becomes a kNumber value
// (compared as a double); every other literal is a kString value (compared
// byte-wise on the lexical form, ignoring datatype and language tag).
//
// Comparison semantics (shared verbatim by AMbER, both baselines and the
// test oracle, so the differential tests pin them):
//   * a numeric constant matches only numeric values, a string constant
//     only string values — mixed-kind comparisons are unsatisfied for
//     every operator *including* '!=' (SPARQL's type-error semantics:
//     an errored comparison filters the row out);
//   * numeric comparison is IEEE double comparison, string comparison is
//     byte-wise lexical comparison.

#ifndef AMBER_RDF_LITERAL_VALUE_H_
#define AMBER_RDF_LITERAL_VALUE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "rdf/term.h"

namespace amber {

/// Comparison operators of the supported FILTER fragment.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// SPARQL surface token of `op` ("=", "!=", "<", "<=", ">", ">=").
std::string_view CompareOpToken(CompareOp op);

/// Mirrors `op` across the operands: `c op ?v` == `?v Flip(op) c`.
CompareOp FlipCompareOp(CompareOp op);

/// True for the XSD datatypes whose values are compared numerically
/// (integer/decimal/double/float and the derived integer types).
bool IsNumericXsdDatatype(std::string_view datatype_iri);

/// \brief A literal's comparable value: a number or a lexical string.
struct LiteralValue {
  bool numeric = false;
  double number = 0.0;  // value when numeric
  std::string text;     // lexical form when !numeric (empty otherwise)

  bool operator==(const LiteralValue&) const = default;

  /// Rendering for EXPLAIN/diagnostics: `25` or `"Ann"`.
  std::string ToString() const;
};

/// Non-owning view of a LiteralValue (residual checks compare values that
/// live in a mapped artifact without copying the string bytes).
struct LiteralValueView {
  bool numeric = false;
  double number = 0.0;
  std::string_view text;

  LiteralValueView() = default;
  LiteralValueView(const LiteralValue& v)  // NOLINT(runtime/explicit)
      : numeric(v.numeric), number(v.number), text(v.text) {}
  LiteralValueView(bool is_numeric, double num, std::string_view txt)
      : numeric(is_numeric), number(num), text(txt) {}
};

/// Classifies a literal term (Section "typed literals" of
/// docs/ARCHITECTURE.md): numeric iff the datatype is numeric XSD *and*
/// the lexical form fully parses as a double; otherwise a string value
/// carrying the lexical form.
LiteralValue LiteralValueOf(const Term& literal);

/// One side of a FILTER conjunction: `?v op value`.
struct ValueComparison {
  CompareOp op = CompareOp::kEq;
  LiteralValue value;

  bool operator==(const ValueComparison&) const = default;
};

/// True iff `have op want` holds under the shared comparison semantics.
bool SatisfiesComparison(const LiteralValueView& have, CompareOp op,
                         const LiteralValueView& want);

/// True iff `have` satisfies every comparison of the conjunction.
bool SatisfiesAll(const LiteralValueView& have,
                  std::span<const ValueComparison> cmps);

}  // namespace amber

#endif  // AMBER_RDF_LITERAL_VALUE_H_
