#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace amber {
namespace {

// Cursor over one line of N-Triples input.
class LineCursor {
 public:
  explicit LineCursor(std::string_view s) : s_(s) {}

  void SkipSpace() {
    while (pos_ < s_.size() && IsSpaceAscii(s_[pos_])) ++pos_;
  }

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  void Advance() { ++pos_; }
  size_t pos() const { return pos_; }

  /// Consumes characters until (excluding) the next unescaped `stop`.
  /// Returns false if `stop` was not found.
  bool TakeUntil(char stop, std::string_view* out) {
    size_t start = pos_;
    bool escaped = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == stop) {
        *out = s_.substr(start, pos_ - start);
        ++pos_;  // consume the stop character
        return true;
      }
      ++pos_;
    }
    return false;
  }

  /// Consumes a run of non-space characters.
  std::string_view TakeToken() {
    size_t start = pos_;
    while (pos_ < s_.size() && !IsSpaceAscii(s_[pos_]) && s_[pos_] != '.') {
      ++pos_;
    }
    return s_.substr(start, pos_ - start);
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

Status MalformedError(std::string_view what, std::string_view line) {
  std::string msg = "malformed N-Triples (";
  msg.append(what);
  msg += "): ";
  // Clip long lines in error messages.
  msg.append(line.substr(0, 120));
  return Status::InvalidArgument(msg);
}

// Parses one term starting at the cursor. `position` is 0/1/2 for s/p/o.
Status ParseTerm(LineCursor* cur, int position, std::string_view line,
                 Term* term) {
  cur->SkipSpace();
  if (cur->AtEnd()) return MalformedError("missing term", line);
  char c = cur->Peek();

  if (c == '<') {  // IRI
    cur->Advance();
    std::string_view raw;
    if (!cur->TakeUntil('>', &raw)) {
      return MalformedError("unterminated IRI", line);
    }
    std::string iri;
    if (!UnescapeNTriples(raw, &iri)) {
      return MalformedError("bad escape in IRI", line);
    }
    if (iri.empty()) return MalformedError("empty IRI", line);
    *term = Term::Iri(std::move(iri));
    return Status::OK();
  }

  if (c == '_') {  // blank node
    cur->Advance();
    if (cur->AtEnd() || cur->Peek() != ':') {
      return MalformedError("bad blank node", line);
    }
    cur->Advance();
    std::string_view label = cur->TakeToken();
    if (label.empty()) return MalformedError("empty blank node label", line);
    if (position == 1) {
      return MalformedError("blank node in predicate position", line);
    }
    *term = Term::Blank(std::string(label));
    return Status::OK();
  }

  if (c == '"') {  // literal
    if (position != 2) {
      return MalformedError("literal outside object position", line);
    }
    cur->Advance();
    std::string_view raw;
    if (!cur->TakeUntil('"', &raw)) {
      return MalformedError("unterminated literal", line);
    }
    std::string lexical;
    if (!UnescapeNTriples(raw, &lexical)) {
      return MalformedError("bad escape in literal", line);
    }
    std::string datatype, lang;
    if (!cur->AtEnd() && cur->Peek() == '@') {
      cur->Advance();
      std::string_view tag = cur->TakeToken();
      if (tag.empty()) return MalformedError("empty language tag", line);
      lang.assign(tag);
    } else if (!cur->AtEnd() && cur->Peek() == '^') {
      cur->Advance();
      if (cur->AtEnd() || cur->Peek() != '^') {
        return MalformedError("bad datatype marker", line);
      }
      cur->Advance();
      if (cur->AtEnd() || cur->Peek() != '<') {
        return MalformedError("datatype must be an IRI", line);
      }
      cur->Advance();
      std::string_view raw_dt;
      if (!cur->TakeUntil('>', &raw_dt)) {
        return MalformedError("unterminated datatype IRI", line);
      }
      if (!UnescapeNTriples(raw_dt, &datatype)) {
        return MalformedError("bad escape in datatype IRI", line);
      }
    }
    *term = Term::Literal(std::move(lexical), std::move(datatype),
                          std::move(lang));
    return Status::OK();
  }

  return MalformedError("unexpected character", line);
}

}  // namespace

Result<bool> NTriplesParser::ParseLine(std::string_view line, Triple* triple) {
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty() || trimmed.front() == '#') return false;

  LineCursor cur(trimmed);
  AMBER_RETURN_IF_ERROR(ParseTerm(&cur, 0, trimmed, &triple->subject));
  AMBER_RETURN_IF_ERROR(ParseTerm(&cur, 1, trimmed, &triple->predicate));
  if (!triple->predicate.is_iri()) {
    return MalformedError("predicate must be an IRI", trimmed);
  }
  AMBER_RETURN_IF_ERROR(ParseTerm(&cur, 2, trimmed, &triple->object));

  cur.SkipSpace();
  if (cur.AtEnd() || cur.Peek() != '.') {
    return MalformedError("missing terminating '.'", trimmed);
  }
  cur.Advance();
  cur.SkipSpace();
  if (!cur.AtEnd() && cur.Peek() != '#') {
    return MalformedError("trailing garbage after '.'", trimmed);
  }
  return true;
}

Result<std::vector<Triple>> NTriplesParser::ParseString(
    std::string_view text) {
  std::vector<Triple> out;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = (end == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_no;
    Triple t;
    Result<bool> parsed = ParseLine(line, &t);
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     parsed.status().message());
    }
    if (*parsed) out.push_back(std::move(t));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return out;
}

Result<std::vector<Triple>> NTriplesParser::ParseFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<Triple> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    Triple t;
    Result<bool> parsed = ParseLine(line, &t);
    if (!parsed.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    if (*parsed) out.push_back(std::move(t));
  }
  return out;
}

void NTriplesWriter::Write(std::ostream& os,
                           const std::vector<Triple>& triples) {
  for (const Triple& t : triples) {
    os << t.ToNTriples() << '\n';
  }
}

Status NTriplesWriter::WriteFile(const std::string& path,
                                 const std::vector<Triple>& triples) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  Write(out, triples);
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace amber
