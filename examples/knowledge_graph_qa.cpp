// Knowledge-graph question answering: the workload that motivates the paper
// (Section 1 — QA systems machine-generate large SPARQL queries against
// encyclopedic graphs).
//
// Generates a DBpedia-like knowledge graph, then answers a batch of
// machine-generated "questions" of growing size, showing how AMbER's
// latency scales where a question-answering backend would sit.

#include <cstdio>

#include "core/amber_engine.h"
#include "gen/scale_free.h"
#include "gen/workload.h"

int main() {
  using namespace amber;

  std::printf("Generating a DBpedia-like knowledge graph...\n");
  ScaleFreeOptions profile = DbpediaProfile(0.25);
  auto triples = GenerateScaleFree(profile);
  std::printf("  %zu triples, %u predicates\n", triples.size(),
              profile.num_predicates);

  auto engine = AmberEngine::Build(triples);
  if (!engine.ok()) {
    std::fprintf(stderr, "build error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("  offline stage: %.2fs database, %.2fs indexes\n\n",
              engine->timings().database_seconds(),
              engine->timings().index_seconds);

  // Machine-generated "questions": complex-shaped conjunctive queries of
  // growing size, like a QA system would emit (the paper cites queries of
  // 50+ triple patterns from DBpedia QA benchmarks).
  WorkloadGenerator workload(triples);
  for (int size : {5, 15, 30, 50}) {
    WorkloadOptions options;
    options.query_size = size;
    options.count = 5;
    options.seed = 400 + size;
    options.literal_fraction = 0.25;
    options.constant_iri_probability = 0.15;
    auto queries = workload.Generate(QueryShape::kComplex, options);

    double total_ms = 0;
    uint64_t total_rows = 0;
    for (const std::string& text : queries) {
      ExecOptions exec;
      exec.timeout = std::chrono::milliseconds(5000);
      auto result = engine->CountSparql(text, exec);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      total_ms += result->stats.elapsed_ms;
      total_rows += result->count;
    }
    std::printf(
        "question size %2d triple patterns: %zu questions answered, "
        "avg %.3f ms, %llu total bindings\n",
        size, queries.size(), queries.empty() ? 0 : total_ms / queries.size(),
        static_cast<unsigned long long>(total_rows));
  }

  std::printf("\nOne concrete question, materialized with LIMIT:\n");
  WorkloadOptions one;
  one.query_size = 8;
  one.count = 1;
  one.seed = 4242;
  auto queries = workload.Generate(QueryShape::kComplex, one);
  if (!queries.empty()) {
    std::printf("%s\n", queries[0].c_str());
    std::string limited = queries[0] + " LIMIT 3";
    auto rows = engine->MaterializeSparql(limited, {});
    if (rows.ok()) {
      for (const auto& row : rows->rows) {
        std::printf("  ->");
        for (const auto& v : row) std::printf(" %s", v.c_str());
        std::printf("\n");
      }
    }
  }
  return 0;
}
