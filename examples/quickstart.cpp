// Quickstart: build AMbER over the paper's running example (Figure 1) and
// answer the Figure 2 SPARQL query.
//
//   $ ./examples/quickstart
//
// Walks the full public API: N-Triples parsing, offline stage (multigraph +
// indexes), SPARQL execution, result translation, and engine statistics.

#include <cstdio>

#include "core/amber_engine.h"
#include "core/explain.h"
#include "gen/paper_example.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"

int main() {
  using namespace amber;

  // 1. Parse the RDF data (Figure 1a of the paper).
  auto triples = NTriplesParser::ParseString(kPaperExampleNTriples);
  if (!triples.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 triples.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu triples.\n", triples->size());

  // 2. Offline stage: dictionaries, multigraph, indexes I = {A, S, N}.
  auto engine = AmberEngine::Build(*triples);
  if (!engine.ok()) {
    std::fprintf(stderr, "build error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Multigraph: %zu vertices, %llu edges, %zu edge types, "
      "%zu attributes.\n",
      engine->graph().NumVertices(),
      static_cast<unsigned long long>(engine->graph().NumEdges()),
      engine->graph().NumEdgeTypes(), engine->graph().NumAttributes());

  // 3. Online stage: answer the paper's query (Figure 2a).
  std::printf("\nQuery:\n%s\n", kPaperExampleQuery);

  // 3a. EXPLAIN: decomposition, matching order, candidate estimates.
  if (auto parsed = SparqlParser::Parse(kPaperExampleQuery); parsed.ok()) {
    auto plan = ExplainQuery(*parsed, engine->dictionaries(),
                             &engine->indexes());
    if (plan.ok()) std::printf("\nEXPLAIN:\n%s", plan->c_str());
  }
  auto rows = engine->MaterializeSparql(kPaperExampleQuery, {});
  if (!rows.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }

  // 4. Print the embeddings.
  std::printf("\n%zu embeddings:\n", rows->rows.size());
  for (const auto& name : rows->var_names) std::printf("  ?%-4s", name.c_str());
  std::printf("\n");
  for (const auto& row : rows->rows) {
    for (const auto& value : row) {
      // Shorten the dbpedia prefix for readability.
      std::string shown = value;
      const std::string prefix = "<http://dbpedia.org/resource/";
      if (shown.rfind(prefix, 0) == 0) {
        shown = shown.substr(prefix.size());
        shown.pop_back();  // trailing '>'
      }
      std::printf("  %-20s", shown.c_str());
    }
    std::printf("\n");
  }
  std::printf("\nStats: %llu recursion calls, %llu initial candidates, "
              "%.3f ms.\n",
              static_cast<unsigned long long>(rows->stats.recursion_calls),
              static_cast<unsigned long long>(rows->stats.initial_candidates),
              rows->stats.elapsed_ms);
  return 0;
}
