// Artifact server warm-up recipe: build the offline artifacts ONCE, persist
// them as a single mmap-able AMF file, then re-open that file the way a
// query server (or every shard of one) would on startup — mmap + validate,
// zero per-element copies — and answer a query immediately.
//
//   $ ./examples/artifact_server [artifact.amf]
//
// The second run of a real server skips the build entirely: if the artifact
// exists it is opened directly. Delete the file to force a rebuild.

#include <cstdio>
#include <string>

#include "core/amber_engine.h"
#include "gen/lubm.h"
#include "util/clock.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace amber;

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/amber_artifact_server.amf");
  const char* query =
      "SELECT ?prof ?dept WHERE { "
      "?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor> "
      "?dept . "
      "?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf> "
      "?course . }";

  // ---- Offline, once: build + persist ------------------------------------
  // (A production deployment runs this in a pipeline, not in the server.)
  {
    LubmOptions options;
    options.universities = 2;
    auto triples = GenerateLubm(options);
    std::printf("offline: %zu triples\n", triples.size());

    AmberEngine::BuildOptions build_options;
    build_options.num_threads = 4;  // parallel offline stage
    Stopwatch sw;
    auto engine = AmberEngine::Build(triples, build_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "build error: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("offline: built in %.1f ms (4 threads)\n",
                sw.ElapsedMillis());

    sw.Reset();
    if (Status s = engine->SaveFile(path); !s.ok()) {
      std::fprintf(stderr, "save error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("offline: saved AMF artifact to %s in %.1f ms\n",
                path.c_str(), sw.ElapsedMillis());
  }
  // The built engine is gone; everything below is what a server does.

  // ---- Server startup: mmap the artifact ---------------------------------
  Stopwatch sw;
  auto server = AmberEngine::OpenFile(path);
  if (!server.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const double open_ms = sw.ElapsedMillis();
  std::printf(
      "server: opened artifact in %.2f ms — %zu vertices, %llu edges, "
      "CSRs and index pools borrowed from the mapping (no copies)\n",
      open_ms, server->graph().NumVertices(),
      static_cast<unsigned long long>(server->graph().NumEdges()));

  // ---- First query on the freshly mapped engine --------------------------
  sw.Reset();
  auto count = server->CountSparql(query, {});
  if (!count.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 count.status().ToString().c_str());
    return 1;
  }
  std::printf("server: first query answered in %.2f ms: %llu rows\n",
              sw.ElapsedMillis(),
              static_cast<unsigned long long>(count->count));
  std::printf("server: warm-up total (open + first query): %.2f ms\n",
              open_ms + sw.ElapsedMillis());
  return 0;
}
