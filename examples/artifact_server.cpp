// Artifact server: the full serving recipe. Build the offline artifacts
// ONCE, persist them as a single mmap-able AMF file, then start a
// QueryService over the re-opened artifact — the way a production shard
// boots — and serve concurrent clients with admission control, per-request
// deadlines, LIMIT/OFFSET pagination and the normalized-query plan/result
// cache.
//
//   $ ./examples/artifact_server [artifact.amf]
//
// A real server's second boot skips the build entirely: if the artifact
// exists it is opened directly. Delete the file to force a rebuild.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "gen/lubm.h"
#include "server/query_service.h"
#include "util/clock.h"

int main(int argc, char** argv) {
  using namespace amber;

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/amber_artifact_server.amf");
  const char* query =
      "SELECT ?prof ?dept WHERE { "
      "?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor> "
      "?dept . "
      "?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf> "
      "?course . }";
  // The same query, respelled: different whitespace, comments, variable
  // names. The service's normalized cache key makes this a HIT.
  const char* respelled =
      "# same query, different spelling\n"
      "SELECT ?p ?d\n"
      "WHERE {\n"
      "  ?p <http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor> ?d .\n"
      "  ?p <http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf> ?c .\n"
      "}";

  // ---- Offline, once: build + persist ------------------------------------
  // (A production deployment runs this in a pipeline, not in the server.)
  {
    LubmOptions options;
    options.universities = 2;
    auto triples = GenerateLubm(options);
    std::printf("offline: %zu triples\n", triples.size());

    AmberEngine::BuildOptions build_options;
    build_options.num_threads = 4;  // parallel offline stage
    Stopwatch sw;
    auto engine = AmberEngine::Build(triples, build_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "build error: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("offline: built in %.1f ms (4 threads)\n",
                sw.ElapsedMillis());
    if (Status s = engine->SaveFile(path); !s.ok()) {
      std::fprintf(stderr, "save error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("offline: saved AMF artifact to %s\n", path.c_str());
  }
  // The built engine is gone; everything below is what a server does.

  // ---- Server boot: mmap the artifact, start the service -----------------
  Stopwatch sw;
  auto engine = AmberEngine::OpenFile(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  ServiceOptions service_options;
  service_options.pool_threads = 4;     // one persistent pool, all requests
  service_options.max_in_flight = 8;    // admission: execute at most 8
  service_options.max_queued = 16;      // ... queue 16 more, then reject
  service_options.cache_entries = 64;   // normalized plan/result LRU
  service_options.default_deadline = std::chrono::milliseconds(1000);
  QueryService service(&engine.value(), service_options);
  std::printf("server: booted in %.2f ms — %zu vertices mapped, pool of %d "
              "workers, cache of %zu entries\n",
              sw.ElapsedMillis(), engine->graph().NumVertices(),
              service_options.pool_threads, service_options.cache_entries);

  // ---- Concurrent clients ------------------------------------------------
  // Four clients page through the same result set; the first execution
  // fills the cache, every later page is served from the retained handle.
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, c, query] {
      RequestOptions page;
      page.offset = static_cast<uint64_t>(c) * 5;
      page.limit = 5;
      page.thread_budget = 2;  // borrow one pool helper
      auto resp = service.Query(query, page);
      if (!resp.ok()) {
        std::fprintf(stderr, "client %d: %s\n", c,
                     resp.status().ToString().c_str());
        return;
      }
      std::printf("client %d: rows [%llu, %llu) of %llu%s\n", c,
                  static_cast<unsigned long long>(page.offset),
                  static_cast<unsigned long long>(page.offset +
                                                  resp->rows.size()),
                  static_cast<unsigned long long>(resp->total_rows),
                  resp->cache_hit ? " (cache hit)" : "");
    });
  }
  for (auto& t : clients) t.join();

  // A respelled equivalent query: normalization makes it hit the cache,
  // and the response carries the request's own variable names (?p ?d).
  auto hit = service.Query(respelled, {});
  if (hit.ok()) {
    std::printf("respelled query: %s, %llu rows, vars",
                hit->cache_hit ? "cache HIT" : "miss",
                static_cast<unsigned long long>(hit->total_rows));
    for (const auto& v : hit->var_names) std::printf(" ?%s", v.c_str());
    std::printf("\n");
  }

  ServiceStats stats = service.Stats();
  std::printf("server: %llu queries, %llu hits / %llu misses, %llu rows "
              "served, peak in-flight %llu\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.rows_served),
              static_cast<unsigned long long>(stats.peak_in_flight));
  return 0;
}
