// Artifact server: the full serving recipe, now over HTTP. Build the
// offline artifacts ONCE, persist them as a single mmap-able AMF file,
// re-open the artifact the way a production shard boots, and serve it
// over the HTTP/1.1 transport (server/http_server.h): concurrent clients
// page through POST /query, a respelled query hits the normalized cache,
// a chunked NDJSON stream arrives line by line, and GET /stats reports
// both the service and transport counters before a graceful drain.
//
//   $ ./examples/artifact_server [artifact.amf]
//
// While the server is up you can also talk to it by hand:
//
//   $ curl -s localhost:<port>/query -d '{"query":"SELECT ..."}'
//
// A real server's second boot skips the build entirely: if the artifact
// exists it is opened directly. Delete the file to force a rebuild.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/amber_engine.h"
#include "gen/lubm.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "util/clock.h"
#include "util/json.h"

int main(int argc, char** argv) {
  using namespace amber;

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/amber_artifact_server.amf");
  const char* query =
      "SELECT ?prof ?dept WHERE { "
      "?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor> "
      "?dept . "
      "?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf> "
      "?course . }";
  // The same query, respelled: different whitespace, comments, variable
  // names. The service's normalized cache key makes this a HIT.
  const char* respelled =
      "# same query, different spelling\n"
      "SELECT ?p ?d\n"
      "WHERE {\n"
      "  ?p <http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor> ?d .\n"
      "  ?p <http://swat.cse.lehigh.edu/onto/univ-bench.owl#teacherOf> ?c .\n"
      "}";

  // ---- Offline, once: build + persist ------------------------------------
  // (A production deployment runs this in a pipeline, not in the server.)
  {
    LubmOptions options;
    options.universities = 2;
    auto triples = GenerateLubm(options);
    std::printf("offline: %zu triples\n", triples.size());

    AmberEngine::BuildOptions build_options;
    build_options.num_threads = 4;  // parallel offline stage
    Stopwatch sw;
    auto engine = AmberEngine::Build(triples, build_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "build error: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    std::printf("offline: built in %.1f ms (4 threads)\n",
                sw.ElapsedMillis());
    if (Status s = engine->SaveFile(path); !s.ok()) {
      std::fprintf(stderr, "save error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("offline: saved AMF artifact to %s\n", path.c_str());
  }
  // The built engine is gone; everything below is what a server does.

  // ---- Server boot: mmap the artifact, start service + transport ---------
  Stopwatch sw;
  auto engine = AmberEngine::OpenFile(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  ServiceOptions service_options;
  service_options.pool_threads = 6;     // one persistent pool, all requests
  service_options.max_in_flight = 8;    // admission: execute at most 8
  service_options.max_queued = 16;      // ... queue 16 more, then reject
  service_options.cache_entries = 64;   // normalized plan/result LRU
  service_options.default_deadline = std::chrono::milliseconds(1000);
  QueryService service(&engine.value(), service_options);

  HttpServer server(&service);  // port 0: the OS picks, port() reads back
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("server: booted in %.2f ms — %zu vertices mapped, pool of %d "
              "workers, listening on 127.0.0.1:%u\n",
              sw.ElapsedMillis(), engine->graph().NumVertices(),
              service_options.pool_threads, server.port());

  // A request body on the wire schema (server/wire.h).
  auto body = [](const char* text, uint64_t offset, uint64_t limit) {
    json::Writer w;
    w.BeginObject();
    w.KV("query", text);
    if (offset != 0) w.KV("offset", offset);
    if (limit != 0) w.KV("limit", limit);
    w.EndObject();
    return w.Take();
  };

  // ---- Concurrent HTTP clients -------------------------------------------
  // Four clients page through the same result set over loopback; the
  // first execution fills the cache, every later page is served from the
  // retained handle.
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &body, c, query] {
      HttpClient client(server.port());
      const uint64_t offset = static_cast<uint64_t>(c) * 5;
      auto resp = client.Post("/query", body(query, offset, 5));
      if (!resp.ok() || resp->status != 200) {
        std::fprintf(stderr, "client %d: %s (http %d)\n", c,
                     resp.ok() ? "error" : resp.status().ToString().c_str(),
                     resp.ok() ? resp->status : 0);
        return;
      }
      auto doc = json::Parse(resp->body);
      if (!doc.ok()) return;
      const json::Value* rows = doc->Find("rows");
      const json::Value* total = doc->Find("total_rows");
      std::printf("client %d: rows [%llu, %llu) of %llu over HTTP\n", c,
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(
                      offset + (rows != nullptr ? rows->array.size() : 0)),
                  static_cast<unsigned long long>(
                      total != nullptr ? total->uint_v : 0));
    });
  }
  for (auto& t : clients) t.join();

  HttpClient client(server.port());

  // A respelled equivalent query: normalization makes it hit the cache.
  // include_stats opts into the nondeterministic fields (cache_hit).
  {
    json::Writer w;
    w.BeginObject();
    w.KV("query", respelled);
    w.KV("include_stats", true);
    w.EndObject();
    auto hit = client.Post("/query", w.Take());
    if (hit.ok() && hit->status == 200) {
      auto doc = json::Parse(hit->body);
      const json::Value* cache_hit =
          doc.ok() ? doc->Find("cache_hit") : nullptr;
      const json::Value* total = doc.ok() ? doc->Find("total_rows") : nullptr;
      std::printf("respelled query: %s, %llu rows over HTTP\n",
                  cache_hit != nullptr && cache_hit->bool_v ? "cache HIT"
                                                            : "miss",
                  static_cast<unsigned long long>(
                      total != nullptr ? total->uint_v : 0));
    }
  }

  // Chunked NDJSON streaming: pages arrive as the matcher produces them.
  {
    int lines = 0;
    auto stream = client.PostStream("/query/stream", body(query, 0, 0),
                                    [&lines](std::string_view) {
                                      ++lines;
                                      return true;
                                    });
    if (stream.ok() && stream->status == 200) {
      std::printf("stream: %d NDJSON lines (%zu bytes), terminator %s\n",
                  lines, stream->body.size(),
                  stream->chunked_complete ? "received" : "missing");
    }
  }

  // The transport's own observability endpoint.
  {
    auto stats = client.Get("/stats");
    if (stats.ok() && stats->status == 200) {
      auto doc = json::Parse(stats->body);
      if (doc.ok()) {
        const json::Value* svc = doc->Find("service");
        const json::Value* srv = doc->Find("server");
        std::printf(
            "server: %llu queries (%llu cache hits), %llu HTTP requests on "
            "%llu connections, %llu bytes written\n",
            static_cast<unsigned long long>(svc->Find("queries")->uint_v),
            static_cast<unsigned long long>(svc->Find("cache_hits")->uint_v),
            static_cast<unsigned long long>(srv->Find("requests")->uint_v),
            static_cast<unsigned long long>(
                srv->Find("connections_accepted")->uint_v),
            static_cast<unsigned long long>(
                srv->Find("bytes_written")->uint_v));
      }
    }
  }

  client.Close();
  server.Stop();  // graceful drain: grace, then cancel, then Shutdown()
  std::printf("server: drained\n");
  return 0;
}
