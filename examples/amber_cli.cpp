// amber_cli: a minimal command-line front end for the engine, exercising
// the offline artifact path end to end.
//
//   amber_cli build  <data.nt> <artifact.amber>   # offline stage + save
//   amber_cli stats  <artifact.amber>             # dataset/index statistics
//   amber_cli query  <artifact.amber> <query.rq> [--limit N] [--count]
//
// With no arguments, runs a self-contained demo on the paper's example.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/amber_engine.h"
#include "gen/paper_example.h"
#include "rdf/ntriples.h"
#include "util/string_util.h"

namespace {

using namespace amber;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<AmberEngine> LoadArtifact(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(std::string("cannot open ") + path);
  return AmberEngine::Load(in);
}

int CmdBuild(const char* data_path, const char* artifact_path) {
  auto engine = AmberEngine::BuildFromFile(data_path);
  if (!engine.ok()) return Fail(engine.status());
  std::ofstream out(artifact_path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(Status::IOError("cannot write artifact"));
  if (Status s = engine->Save(out); !s.ok()) return Fail(s);
  std::printf("built %s: %zu vertices, %llu edges; offline stage "
              "%.2fs db + %.2fs index\n",
              artifact_path, engine->graph().NumVertices(),
              static_cast<unsigned long long>(engine->graph().NumEdges()),
              engine->timings().database_seconds(),
              engine->timings().index_seconds);
  return 0;
}

int CmdStats(const char* artifact_path) {
  auto engine = LoadArtifact(artifact_path);
  if (!engine.ok()) return Fail(engine.status());
  const Multigraph& g = engine->graph();
  std::printf("vertices:    %zu\n", g.NumVertices());
  std::printf("edges:       %llu\n",
              static_cast<unsigned long long>(g.NumEdges()));
  std::printf("edge types:  %zu\n", g.NumEdgeTypes());
  std::printf("attributes:  %zu (%llu assignments)\n", g.NumAttributes(),
              static_cast<unsigned long long>(g.NumAttributeAssignments()));
  std::printf("graph size:  %s\n", FormatBytes(g.ByteSize()).c_str());
  std::printf("index size:  %s\n",
              FormatBytes(engine->indexes().ByteSize()).c_str());
  return 0;
}

int CmdQuery(const char* artifact_path, const char* query_path,
             uint64_t limit, bool count_only) {
  auto engine = LoadArtifact(artifact_path);
  if (!engine.ok()) return Fail(engine.status());
  std::ifstream in(query_path);
  if (!in) return Fail(Status::IOError("cannot open query file"));
  std::stringstream buffer;
  buffer << in.rdbuf();

  ExecOptions options;
  options.max_rows = limit;
  if (count_only) {
    auto result = engine->CountSparql(buffer.str(), options);
    if (!result.ok()) return Fail(result.status());
    std::printf("%llu rows (%.3f ms)\n",
                static_cast<unsigned long long>(result->count),
                result->stats.elapsed_ms);
    return 0;
  }
  auto rows = engine->MaterializeSparql(buffer.str(), options);
  if (!rows.ok()) return Fail(rows.status());
  for (const auto& name : rows->var_names) std::printf("?%s\t", name.c_str());
  std::printf("\n");
  for (const auto& row : rows->rows) {
    for (const auto& v : row) std::printf("%s\t", v.c_str());
    std::printf("\n");
  }
  std::fprintf(stderr, "%zu rows in %.3f ms\n", rows->rows.size(),
               rows->stats.elapsed_ms);
  return 0;
}

int Demo() {
  std::printf("amber_cli demo (no arguments given)\n\n");
  auto triples = NTriplesParser::ParseString(kPaperExampleNTriples);
  if (!triples.ok()) return Fail(triples.status());
  auto engine = AmberEngine::Build(*triples);
  if (!engine.ok()) return Fail(engine.status());
  auto rows = engine->MaterializeSparql(kPaperExampleQuery, {});
  if (!rows.ok()) return Fail(rows.status());
  std::printf("paper example query: %zu embeddings\n", rows->rows.size());
  std::printf("\nusage:\n"
              "  amber_cli build <data.nt> <artifact.amber>\n"
              "  amber_cli stats <artifact.amber>\n"
              "  amber_cli query <artifact.amber> <query.rq> "
              "[--limit N] [--count]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Demo();
  if (std::strcmp(argv[1], "build") == 0 && argc == 4) {
    return CmdBuild(argv[2], argv[3]);
  }
  if (std::strcmp(argv[1], "stats") == 0 && argc == 3) {
    return CmdStats(argv[2]);
  }
  if (std::strcmp(argv[1], "query") == 0 && argc >= 4) {
    uint64_t limit = 0;
    bool count_only = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
        limit = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--count") == 0) {
        count_only = true;
      }
    }
    return CmdQuery(argv[2], argv[3], limit, count_only);
  }
  return Demo();
}
