// LUBM-style university workload: hand-written SPARQL queries in the spirit
// of the original LUBM query mix (advisors, co-enrollment, department
// staffing), answered over the from-scratch LUBM-like generator.

#include <cstdio>

#include "core/amber_engine.h"
#include "gen/lubm.h"

int main() {
  using namespace amber;

  LubmOptions options;
  options.universities = 1;
  auto triples = GenerateLubm(options);
  std::printf("LUBM(1)-like dataset: %zu triples\n", triples.size());

  auto engine = AmberEngine::Build(triples);
  if (!engine.ok()) {
    std::fprintf(stderr, "build error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  struct NamedQuery {
    const char* name;
    const char* text;
  };
  const NamedQuery queries[] = {
      {"Q1: graduate students and their advisors' departments",
       "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
       "SELECT ?student ?advisor ?dept WHERE {\n"
       "  ?student a ub:GraduateStudent .\n"
       "  ?student ub:advisor ?advisor .\n"
       "  ?advisor ub:worksFor ?dept .\n"
       "  ?student ub:memberOf ?dept .\n"
       "}"},
      {"Q2: students taking a course taught by their advisor",
       "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
       "SELECT ?student ?prof ?course WHERE {\n"
       "  ?student ub:advisor ?prof .\n"
       "  ?prof ub:teacherOf ?course .\n"
       "  ?student ub:takesCourse ?course .\n"
       "}"},
      {"Q3: department heads and where they earned their doctorate",
       "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
       "SELECT ?prof ?dept ?univ WHERE {\n"
       "  ?prof ub:headOf ?dept .\n"
       "  ?prof ub:doctoralDegreeFrom ?univ .\n"
       "}"},
      {"Q4: teaching assistants of courses they also take (sanity: rare)",
       "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
       "SELECT ?ta ?course WHERE {\n"
       "  ?ta ub:teachingAssistantOf ?course .\n"
       "  ?ta ub:takesCourse ?course .\n"
       "}"},
      {"Q5: co-authors via shared publications (star on the publication)",
       "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
       "SELECT DISTINCT ?pub ?a WHERE {\n"
       "  ?pub a ub:Publication .\n"
       "  ?pub ub:publicationAuthor ?a .\n"
       "} LIMIT 10"},
  };

  for (const NamedQuery& q : queries) {
    ExecOptions exec;
    exec.timeout = std::chrono::milliseconds(10000);
    auto count = engine->CountSparql(q.text, exec);
    if (!count.ok()) {
      std::printf("%s\n  error: %s\n", q.name,
                  count.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n  %llu results in %.3f ms "
                "(%llu recursion calls)\n",
                q.name, static_cast<unsigned long long>(count->count),
                count->stats.elapsed_ms,
                static_cast<unsigned long long>(count->stats.recursion_calls));
  }

  // Show a few concrete rows from Q2.
  auto rows = engine->MaterializeSparql(
      std::string(queries[1].text) + " LIMIT 3", {});
  if (rows.ok() && !rows->rows.empty()) {
    std::printf("\nSample rows from Q2:\n");
    for (const auto& row : rows->rows) {
      std::printf("  %s advised-by %s via %s\n", row[0].c_str(),
                  row[1].c_str(), row[2].c_str());
    }
  }
  return 0;
}
