// Engine shootout: runs the same workload through AMbER and both baseline
// architectures (six-permutation triple store; index-free graph
// backtracking), verifying they agree and contrasting their latencies —
// a miniature of the paper's Section 7 evaluation.

#include <cstdio>

#include "baseline/graph_backtrack.h"
#include "baseline/triple_store.h"
#include "core/amber_engine.h"
#include "gen/scale_free.h"
#include "gen/workload.h"

int main() {
  using namespace amber;

  ScaleFreeOptions profile = YagoProfile(0.2);
  auto triples = GenerateScaleFree(profile);
  std::printf("YAGO-like dataset: %zu triples\n\n", triples.size());

  auto amber_engine = AmberEngine::Build(triples);
  auto store = TripleStoreEngine::Build(triples);
  auto graph_bt = GraphBacktrackEngine::Build(triples);
  if (!amber_engine.ok() || !store.ok() || !graph_bt.ok()) {
    std::fprintf(stderr, "engine build failed\n");
    return 1;
  }
  QueryEngine* engines[] = {&*amber_engine, &*store, &*graph_bt};

  WorkloadGenerator workload(triples);
  for (QueryShape shape : {QueryShape::kStar, QueryShape::kComplex}) {
    const char* shape_name = shape == QueryShape::kStar ? "star" : "complex";
    WorkloadOptions options;
    options.query_size = 12;
    options.count = 8;
    options.seed = 99;
    auto queries = workload.Generate(shape, options);
    std::printf("== %s queries (size 12, %zu queries) ==\n", shape_name,
                queries.size());
    std::printf("%-14s %12s %12s %10s\n", "engine", "avg ms", "rows(total)",
                "agree");

    std::vector<uint64_t> counts_per_engine;
    for (QueryEngine* engine : engines) {
      double total_ms = 0;
      uint64_t total_rows = 0;
      for (const std::string& text : queries) {
        ExecOptions exec;
        exec.timeout = std::chrono::milliseconds(10000);
        auto result = engine->CountSparql(text, exec);
        if (!result.ok()) continue;
        total_ms += result->stats.elapsed_ms;
        total_rows += result->count;
      }
      counts_per_engine.push_back(total_rows);
      bool agree = counts_per_engine[0] == total_rows;
      std::printf("%-14s %12.3f %12llu %10s\n", engine->name().c_str(),
                  queries.empty() ? 0 : total_ms / queries.size(),
                  static_cast<unsigned long long>(total_rows),
                  agree ? "yes" : "NO!");
    }
    std::printf("\n");
  }
  std::printf("All engines implement the paper's query model, so the row "
              "counts must agree; the latencies demonstrate why AMbER's "
              "indexes + satellite batching win (Section 7).\n");
  return 0;
}
