// Figure 10 of the paper: star-shaped queries on LUBM.

#include "common/bench_common.h"

int main() {
  amber::bench::RunShapeFigure("Figure 10: LUBM, star-shaped queries", "LUBM",
                               amber::QueryShape::kStar);
  return 0;
}
