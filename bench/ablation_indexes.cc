// Ablation B (docs/BENCHMARKS.md): value of the index ensemble and the satellite
// decomposition. Compares
//   * AMbER               (S + A + N, core/satellite decomposition),
//   * AMbER-noS           (initial candidates by full synopsis scan),
//   * GraphBT             (no indexes, no decomposition)
// on star queries, where satellite batching matters most. Also reports the
// CandInit sizes that the S index produces.

#include <cstdio>

#include "baseline/graph_backtrack.h"
#include "common/bench_common.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  DatasetBundle dataset = MakeDataset("YAGO", config.scale);
  auto amber_engine = AmberEngine::Build(dataset.triples);
  if (!amber_engine.ok()) return 1;
  auto graph_bt = GraphBacktrackEngine::Build(dataset.triples);
  if (!graph_bt.ok()) return 1;
  auto workloads = MakeWorkloads(dataset, QueryShape::kStar, config);

  std::printf("\nAblation B: index ensemble + satellite decomposition "
              "(YAGO star queries)\n");
  std::printf("%-8s %14s %14s %14s %18s\n", "size", "AMbER (ms)",
              "AMbER-noS (ms)", "GraphBT (ms)", "avg |CandInit|");
  for (size_t i = 0; i < config.sizes.size(); ++i) {
    double full_ms = 0, nos_ms = 0, bt_ms = 0, cand = 0;
    int full_n = 0, nos_n = 0, bt_n = 0;
    for (const std::string& text : workloads[i]) {
      ExecOptions options;
      options.timeout = std::chrono::milliseconds(config.timeout_ms);
      if (auto r = amber_engine->CountSparql(text, options);
          r.ok() && !r->stats.timed_out) {
        ++full_n;
        full_ms += r->stats.elapsed_ms;
        cand += static_cast<double>(r->stats.initial_candidates);
      }
      ExecOptions no_sig = options;
      no_sig.use_signature_index = false;
      if (auto r = amber_engine->CountSparql(text, no_sig);
          r.ok() && !r->stats.timed_out) {
        ++nos_n;
        nos_ms += r->stats.elapsed_ms;
      }
      if (auto r = graph_bt->CountSparql(text, options);
          r.ok() && !r->stats.timed_out) {
        ++bt_n;
        bt_ms += r->stats.elapsed_ms;
      }
    }
    std::printf("%-8d %14.3f %14.3f %14.3f %18.1f\n", config.sizes[i],
                full_n ? full_ms / full_n : -1.0,
                nos_n ? nos_ms / nos_n : -1.0, bt_n ? bt_ms / bt_n : -1.0,
                full_n ? cand / full_n : -1.0);
  }
  std::printf("\nExpected shape: AMbER <= AMbER-noS << GraphBT; CandInit "
              "stays small thanks to the S index + ProcessVertex.\n");
  return 0;
}
