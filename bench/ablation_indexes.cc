// Ablation B (docs/BENCHMARKS.md): value of the index ensemble and the satellite
// decomposition. Compares
//   * AMbER               (S + A + N, core/satellite decomposition),
//   * AMbER-noS           (initial candidates by full synopsis scan),
//   * GraphBT             (no indexes, no decomposition)
// on star queries, where satellite batching matters most. Also reports the
// CandInit sizes that the S index produces. With AMBER_BENCH_JSON_DIR set,
// the three series are written as BENCH_ablation_b_index_ensemble.json.

#include <cstdio>
#include <vector>

#include "baseline/graph_backtrack.h"
#include "common/bench_common.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  DatasetBundle dataset = MakeDataset("YAGO", config.scale);
  auto amber_engine = AmberEngine::Build(dataset.triples);
  if (!amber_engine.ok()) return 1;
  auto graph_bt = GraphBacktrackEngine::Build(dataset.triples);
  if (!graph_bt.ok()) return 1;
  auto workloads = MakeWorkloads(dataset, QueryShape::kStar, config);

  // One mode per series, same protocol as RunSeries: unanswered = failed
  // or timed out, averages over answered only, and a mode that answers
  // nothing at one size is skipped for larger ones ("fails from size k
  // onwards").
  const std::vector<std::string> modes = {"AMbER", "AMbER-noS", "GraphBT"};
  std::vector<std::vector<SeriesPoint>> series(modes.size());
  std::vector<bool> dead(modes.size(), false);
  std::vector<double> cand_init(config.sizes.size(), 0.0);

  for (size_t i = 0; i < config.sizes.size(); ++i) {
    for (size_t m = 0; m < modes.size(); ++m) {
      SeriesPoint point;
      point.size = config.sizes[i];
      point.total = static_cast<int>(workloads[i].size());
      if (dead[m] || workloads[i].empty()) {
        point.unanswered_pct = 100.0;
        series[m].push_back(point);
        continue;
      }
      double total_ms = 0.0;
      for (const std::string& text : workloads[i]) {
        ExecOptions options;
        options.timeout = std::chrono::milliseconds(config.timeout_ms);
        options.use_signature_index = (m != 1);
        QueryEngine* engine = (m == 2)
                                  ? static_cast<QueryEngine*>(&*graph_bt)
                                  : static_cast<QueryEngine*>(&*amber_engine);
        auto r = engine->CountSparql(text, options);
        if (!r.ok() || r->stats.timed_out) continue;
        ++point.answered;
        total_ms += r->stats.elapsed_ms;
        if (m == 0) {
          cand_init[i] += static_cast<double>(r->stats.initial_candidates);
        }
      }
      point.avg_ms = point.answered > 0 ? total_ms / point.answered : 0.0;
      point.unanswered_pct = 100.0 * (point.total - point.answered) /
                             std::max(1, point.total);
      if (point.answered == 0) dead[m] = true;
      series[m].push_back(point);
    }
  }

  std::printf("\nAblation B: index ensemble + satellite decomposition "
              "(YAGO star queries)\n");
  std::printf("%-8s %14s %14s %14s %18s\n", "size", "AMbER (ms)",
              "AMbER-noS (ms)", "GraphBT (ms)", "avg |CandInit|");
  for (size_t i = 0; i < config.sizes.size(); ++i) {
    const int answered = series[0][i].answered;
    std::printf("%-8d %14.3f %14.3f %14.3f %18.1f\n", config.sizes[i],
                answered ? series[0][i].avg_ms : -1.0,
                series[1][i].answered ? series[1][i].avg_ms : -1.0,
                series[2][i].answered ? series[2][i].avg_ms : -1.0,
                answered ? cand_init[i] / answered : -1.0);
  }
  std::printf("\nExpected shape: AMbER <= AMbER-noS << GraphBT; CandInit "
              "stays small thanks to the S index + ProcessVertex.\n");
  WriteSeriesJson("Ablation B index ensemble", modes, series, config);
  return 0;
}
