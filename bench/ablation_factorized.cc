// Factorized-result ablation (ROADMAP: factorized answer graphs): one
// AMbER engine, star workloads whose result cardinality is multiplied by
// the generator's satellite_fanout knob, four operations compared at each
// fanout level:
//
//   count-fact       Count() — product-of-list-sizes arithmetic, the
//                    odometer never runs;
//   enumerate-flat   Materialize() in flat form — the full cross-product
//                    is expanded row by row;
//   expand-fact      Factorize() + cursor expansion of every row — same
//                    output as enumerate-flat, through the factorized
//                    handle;
//   page-fact        Factorize() + Skip(total - 10) + a 10-row page — the
//                    deep-offset pagination path (prefix groups are
//                    skipped arithmetically, only the page expands).
//
// The "size" axis is the fanout level (extra `anchor <p> ?SFi` patterns
// per query), not the query size: rows grow as fanout^k while groups stay
// constant, so count-fact and page-fact should flatten where the flat
// enumeration curve climbs. The driver prints the COUNT speedup at the
// largest fanout; the expected shape is >= 5x once the cross-product
// dominates (the acceptance observation for this ablation).
//
// Env knobs (bench_common.h): AMBER_BENCH_SCALE / _QUERIES / _TIMEOUT_MS /
// _JSON_DIR; AMBER_BENCH_SIZES here means the fanout sweep (default 1,2,4).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "core/factorized.h"
#include "gen/workload.h"
#include "sparql/parser.h"

int main() {
  using namespace amber;
  using namespace amber::bench;
  using Clock = std::chrono::steady_clock;

  BenchConfig config = BenchConfig::FromEnv();
  // The sizes axis is reused as the fanout sweep.
  if (std::getenv("AMBER_BENCH_SIZES") == nullptr) config.sizes = {1, 2, 4};

  DatasetBundle dataset = MakeDataset("DBPEDIA", config.scale);
  std::fprintf(stderr, "[Ablation factorized] dataset: %zu triples\n",
               dataset.triples.size());
  auto built = AmberEngine::Build(dataset.triples);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  AmberEngine engine = std::move(built).value();
  WorkloadGenerator generator(dataset.triples);

  const std::vector<std::string> names = {"count-fact", "enumerate-flat",
                                          "expand-fact", "page-fact"};
  enum Op { kCountFact = 0, kEnumerateFlat, kExpandFact, kPageFact };
  std::vector<std::vector<SeriesPoint>> series(
      names.size(), std::vector<SeriesPoint>(config.sizes.size()));

  for (size_t fi = 0; fi < config.sizes.size(); ++fi) {
    const int fanout = config.sizes[fi];
    WorkloadOptions wopts;
    wopts.query_size = 3;  // small star: the fanout patterns dominate
    wopts.count = config.queries_per_point;
    wopts.satellite_fanout = fanout;
    std::vector<std::string> queries =
        generator.Generate(QueryShape::kStar, wopts);
    std::fprintf(stderr, "  fanout %d: %zu queries\n", fanout,
                 queries.size());

    for (size_t op = 0; op < names.size(); ++op) {
      SeriesPoint& point = series[op][fi];
      point.size = fanout;
      double total_ms = 0;
      for (const std::string& text : queries) {
        ++point.total;
        auto parsed = SparqlParser::Parse(text);
        if (!parsed.ok()) continue;
        ExecOptions opts;
        opts.timeout = std::chrono::milliseconds(config.timeout_ms);
        bool answered = false;
        const auto start = Clock::now();
        switch (op) {
          case kCountFact: {
            auto r = engine.Count(*parsed, opts);
            answered = r.ok() && !r->stats.timed_out;
            break;
          }
          case kEnumerateFlat: {
            auto r = engine.Materialize(*parsed, opts);
            answered = r.ok() && !r->stats.timed_out;
            break;
          }
          case kExpandFact: {
            ExecOptions fopts = opts;
            fopts.result_form = ResultForm::kFactorized;
            auto r = engine.Factorize(*parsed, fopts);
            answered = r.ok() && !r->stats.timed_out;
            if (answered) {
              FactorizedResult::Cursor cur = r->result.Expand();
              size_t sink = 0;
              while (cur.Next()) sink += engine.TranslateRow(cur.Row()).size();
              if (sink == SIZE_MAX) std::fprintf(stderr, "?");  // keep alive
            }
            break;
          }
          case kPageFact: {
            ExecOptions fopts = opts;
            fopts.result_form = ResultForm::kFactorized;
            auto r = engine.Factorize(*parsed, fopts);
            answered = r.ok() && !r->stats.timed_out;
            if (answered) {
              const uint64_t total = r->result.total_rows;
              const uint64_t page = 10;
              FactorizedResult::Cursor cur = r->result.Expand();
              cur.Skip(total > page ? total - page : 0);
              size_t sink = 0;
              for (uint64_t i = 0; i < page && cur.Next(); ++i) {
                sink += engine.TranslateRow(cur.Row()).size();
              }
              if (sink == SIZE_MAX) std::fprintf(stderr, "?");
            }
            break;
          }
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (answered) {
          ++point.answered;
          total_ms += ms;
        }
      }
      point.avg_ms = point.answered > 0 ? total_ms / point.answered : 0;
      point.unanswered_pct =
          point.total > 0
              ? 100.0 * (point.total - point.answered) / point.total
              : 0;
    }
  }

  std::printf("\nAblation: factorized answer graphs (star queries + fanout "
              "satellites, DBPEDIA-like data)\n");
  std::printf("%-8s", "fanout");
  for (const std::string& n : names) std::printf("%16s", n.c_str());
  std::printf("\n");
  for (size_t fi = 0; fi < config.sizes.size(); ++fi) {
    std::printf("%-8d", config.sizes[fi]);
    for (size_t op = 0; op < names.size(); ++op) {
      if (series[op][fi].answered > 0) {
        std::printf("%14.3fms", series[op][fi].avg_ms);
      } else {
        std::printf("%16s", "-");
      }
    }
    std::printf("\n");
  }

  const SeriesPoint& count_last = series[kCountFact].back();
  const SeriesPoint& flat_last = series[kEnumerateFlat].back();
  if (count_last.answered > 0 && flat_last.answered > 0 &&
      count_last.avg_ms > 0) {
    std::printf("\nCOUNT speedup at fanout %d: %.1fx (flat enumeration "
                "%.3fms vs factorized count %.3fms; expected >= 5x once "
                "the cross-product dominates)\n",
                count_last.size, flat_last.avg_ms / count_last.avg_ms,
                flat_last.avg_ms, count_last.avg_ms);
  }
  std::printf("\nExpected shape: count-fact and page-fact stay flat as "
              "fanout grows (groups are constant); enumerate-flat and "
              "expand-fact climb with the expanded row count.\n");

  WriteSeriesJson("Ablation factorized", names, series, config);
  return 0;
}
