// Fig12 (beyond the paper): FILTER pushdown vs post-filter-only ablation.
//
// One DBpedia-profile scale-free dataset with numeric typed literals; star
// workloads where every numeric literal pattern is generalized to a FILTER
// range whose window covers a swept fraction of the predicate's value list
// (the selectivity knob). Two modes of the same AmberEngine:
//
//   * AMbER-pushdown:   default options — predicate constraints become
//                       ValueIndex range scans seeding/refining candidates,
//                       and the planner orders by range width;
//   * AMbER-postfilter: ExecOptions::use_value_index = false — the same
//                       plan shape as the paper's, with every constraint
//                       evaluated residually per candidate.
//
// The "size" axis of the emitted BENCH_fig12_filter.json is the selectivity
// in percent (1 = the window covers 1% of the predicate's values). The
// expected shape: pushdown wins by a growing margin as selectivity drops,
// and converges to post-filter cost as the window approaches 100%.
//
// Env knobs (bench_common.h): AMBER_BENCH_SCALE / _QUERIES / _TIMEOUT_MS;
// AMBER_BENCH_SIZES overrides the selectivity sweep (values in percent).

#include <cstdio>
#include <vector>

#include "common/bench_common.h"
#include "gen/scale_free.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  std::vector<int> selectivities = {1, 5, 10, 25, 50, 90};
  if (const char* env = std::getenv("AMBER_BENCH_SIZES")) {
    (void)env;  // FromEnv already parsed it into config.sizes
    selectivities = config.sizes;
  }
  config.sizes = selectivities;

  // Attribute-rich profile: FILTER workloads need centers that own
  // numeric literals, and the ablation wants the filter (not constant
  // attributes) to carry the selectivity.
  ScaleFreeOptions data_options = DbpediaProfile(config.scale);
  data_options.attr_fraction = 0.8;
  data_options.numeric_attr_fraction = 1.0;
  data_options.num_numeric_predicates = 8;
  DatasetBundle dataset;
  dataset.name = "DBPEDIA+numeric";
  dataset.triples = GenerateScaleFree(data_options);
  std::fprintf(stderr, "[Fig12 filter] dataset: %zu triples, scale=%.2f\n",
               dataset.triples.size(), config.scale);

  auto engine = AmberEngine::Build(dataset.triples);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // One workload per selectivity point: star queries of a fixed small size
  // with every numeric literal pattern FILTER-generalized.
  WorkloadGenerator gen(dataset.triples);
  std::vector<std::vector<std::string>> workloads;
  for (int sel : selectivities) {
    WorkloadOptions options;
    options.query_size = 3;
    options.count = config.queries_per_point;
    options.seed = 4200 + sel;
    options.literal_fraction = 0.67;
    options.filter_probability = 1.0;
    options.filter_selectivity = sel / 100.0;
    workloads.push_back(gen.Generate(QueryShape::kStar, options));
    std::fprintf(stderr, "  selectivity %d%%: %zu queries\n", sel,
                 workloads.back().size());
  }

  const std::vector<std::string> modes = {"AMbER-pushdown",
                                          "AMbER-postfilter"};
  std::vector<std::vector<SeriesPoint>> series(modes.size());
  uint64_t pushdown_scans = 0, pushdown_checks = 0, postfilter_checks = 0;
  for (size_t i = 0; i < selectivities.size(); ++i) {
    for (size_t m = 0; m < modes.size(); ++m) {
      SeriesPoint point;
      point.size = selectivities[i];
      point.total = static_cast<int>(workloads[i].size());
      double total_ms = 0.0;
      for (const std::string& text : workloads[i]) {
        ExecOptions options;
        options.timeout = std::chrono::milliseconds(config.timeout_ms);
        options.num_threads = config.exec_threads;
        options.use_value_index = (m == 0);
        auto r = engine->CountSparql(text, options);
        if (!r.ok() || r->stats.timed_out) continue;
        ++point.answered;
        total_ms += r->stats.elapsed_ms;
        if (m == 0) {
          pushdown_scans += r->stats.range_scans;
          pushdown_checks += r->stats.predicate_checks;
        } else {
          postfilter_checks += r->stats.predicate_checks;
        }
      }
      point.avg_ms = point.answered > 0 ? total_ms / point.answered : 0.0;
      point.unanswered_pct = 100.0 * (point.total - point.answered) /
                             std::max(1, point.total);
      series[m].push_back(point);
    }
  }

  std::printf("\nFig12: FILTER pushdown vs post-filter (star queries, "
              "3 patterns, numeric ranges)\n");
  std::printf("%-14s %16s %18s %10s\n", "selectivity", "pushdown (ms)",
              "post-filter (ms)", "speedup");
  for (size_t i = 0; i < selectivities.size(); ++i) {
    const SeriesPoint& a = series[0][i];
    const SeriesPoint& b = series[1][i];
    std::printf("%12d%% %16.3f %18.3f %9.2fx\n", selectivities[i], a.avg_ms,
                b.avg_ms, a.avg_ms > 0 ? b.avg_ms / a.avg_ms : 0.0);
  }
  std::printf("\npushdown: %llu range scans, %llu residual checks; "
              "post-filter: %llu residual checks\n",
              static_cast<unsigned long long>(pushdown_scans),
              static_cast<unsigned long long>(pushdown_checks),
              static_cast<unsigned long long>(postfilter_checks));

  WriteSeriesJson("Fig12 filter", modes, series, config);
  return 0;
}
