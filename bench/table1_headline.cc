// Table 1 of the paper: average time for complex queries with 50 triple
// patterns on DBPEDIA, per engine. (Paper: AMbER 1.56s, gStore 11.96s,
// Virtuoso 20.45s, x-RDF-3X >60s over 200 queries at full scale — we check
// the *ordering*, not the absolute numbers.)

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  config.sizes = {50};
  DatasetBundle dataset = MakeDataset("DBPEDIA", config.scale);
  std::fprintf(stderr, "dataset: %zu triples\n", dataset.triples.size());
  EngineSuite suite = BuildEngines(dataset);
  auto workloads = MakeWorkloads(dataset, QueryShape::kComplex, config);

  std::printf("\nTable 1: average time for complex queries of 50 triple "
              "patterns on DBPEDIA-like data\n");
  std::printf("(per-query timeout %d ms; unanswered queries excluded from "
              "the average, as in the paper)\n\n",
              config.timeout_ms);
  std::printf("%-14s %14s %14s %12s\n", "engine", "avg time (ms)",
              "% unanswered", "answered");
  std::vector<QueryEngine*> engines = suite.All();
  std::vector<std::vector<SeriesPoint>> all_series;
  for (QueryEngine* engine : engines) {
    all_series.push_back(
        RunSeries(engine, workloads, config.sizes, config.timeout_ms));
    const SeriesPoint& p = all_series.back()[0];
    if (p.answered > 0) {
      std::printf("%-14s %14.3f %13.1f%% %8d/%d\n", engine->name().c_str(),
                  p.avg_ms, p.unanswered_pct, p.answered, p.total);
    } else {
      std::printf("%-14s %14s %13.1f%% %8d/%d\n", engine->name().c_str(),
                  ">timeout", p.unanswered_pct, p.answered, p.total);
    }
  }
  std::printf("\nExpected shape (paper Table 1): AMbER fastest by a wide "
              "margin; graph baseline next; join-based stores slowest or "
              "timing out.\n");
  WriteSeriesJson("Table 1 headline", engines, all_series, config);
  return 0;
}
