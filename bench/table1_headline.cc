// Table 1 of the paper: average time for complex queries with 50 triple
// patterns on DBPEDIA, per engine. (Paper: AMbER 1.56s, gStore 11.96s,
// Virtuoso 20.45s, x-RDF-3X >60s over 200 queries at full scale — we check
// the *ordering*, not the absolute numbers.)
//
// Beyond the paper: the emitted JSON also carries an AMbER online-stage
// thread sweep (series "AMbER-2t"/"AMbER-4t") so the parallel mode's
// headline speedup is tracked next to the engine comparison. The base
// engine rows honour AMBER_BENCH_EXEC_THREADS (default 1 = serial).

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  config.sizes = {50};
  DatasetBundle dataset = MakeDataset("DBPEDIA", config.scale);
  std::fprintf(stderr, "dataset: %zu triples\n", dataset.triples.size());
  EngineSuite suite = BuildEngines(dataset);
  auto workloads = MakeWorkloads(dataset, QueryShape::kComplex, config);

  std::printf("\nTable 1: average time for complex queries of 50 triple "
              "patterns on DBPEDIA-like data\n");
  std::printf("(per-query timeout %d ms; unanswered queries excluded from "
              "the average, as in the paper)\n\n",
              config.timeout_ms);
  std::printf("%-14s %14s %14s %12s\n", "engine", "avg time (ms)",
              "% unanswered", "answered");
  std::vector<QueryEngine*> engines = suite.All();
  std::vector<std::string> series_names;
  std::vector<std::vector<SeriesPoint>> all_series;
  for (QueryEngine* engine : engines) {
    series_names.push_back(engine->name());
    all_series.push_back(RunSeries(engine, workloads, config.sizes,
                                   config.timeout_ms, config.exec_threads));
    const SeriesPoint& p = all_series.back()[0];
    if (p.answered > 0) {
      std::printf("%-14s %14.3f %13.1f%% %8d/%d\n", engine->name().c_str(),
                  p.avg_ms, p.unanswered_pct, p.answered, p.total);
    } else {
      std::printf("%-14s %14s %13.1f%% %8d/%d\n", engine->name().c_str(),
                  ">timeout", p.unanswered_pct, p.answered, p.total);
    }
  }

  // Parallel online-stage sweep: the same AMbER engine and workload at 2
  // and 4 worker threads (rows are bit-identical to serial by contract;
  // bench/ablation_parallel.cc is the dedicated sweep with determinism
  // checks). The base AMbER row honours AMBER_BENCH_EXEC_THREADS, so when
  // that knob is >1 an explicit 1-thread series is added to keep the
  // "vs serial" comparison honest.
  double serial_ms = all_series[0][0].avg_ms;
  if (config.exec_threads != 1) {
    series_names.push_back("AMbER-1t");
    all_series.push_back(RunSeries(suite.amber.get(), workloads, config.sizes,
                                   config.timeout_ms, /*exec_threads=*/1));
    const SeriesPoint& p = all_series.back()[0];
    serial_ms = p.avg_ms;
    if (p.answered > 0) {
      std::printf("%-14s %14.3f %13.1f%% %8d/%d\n",
                  series_names.back().c_str(), p.avg_ms, p.unanswered_pct,
                  p.answered, p.total);
    }
  }
  for (int threads : {2, 4}) {
    series_names.push_back("AMbER-" + std::to_string(threads) + "t");
    all_series.push_back(RunSeries(suite.amber.get(), workloads, config.sizes,
                                   config.timeout_ms, threads));
    const SeriesPoint& p = all_series.back()[0];
    if (p.answered > 0) {
      std::printf("%-14s %14.3f %13.1f%% %8d/%d  (%.2fx vs serial)\n",
                  series_names.back().c_str(), p.avg_ms, p.unanswered_pct,
                  p.answered, p.total,
                  p.avg_ms > 0 ? serial_ms / p.avg_ms : 0.0);
    }
  }

  std::printf("\nExpected shape (paper Table 1): AMbER fastest by a wide "
              "margin; graph baseline next; join-based stores slowest or "
              "timing out.\n");
  WriteSeriesJson("Table 1 headline", series_names, all_series, config);
  return 0;
}
