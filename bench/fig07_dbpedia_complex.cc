// Figure 7 of the paper: complex-shaped queries on DBPEDIA — (a) average
// time and (b) % unanswered, for query sizes 10..50.

#include "common/bench_common.h"

int main() {
  amber::bench::RunShapeFigure("Figure 7: DBPEDIA, complex-shaped queries",
                               "DBPEDIA", amber::QueryShape::kComplex);
  return 0;
}
