// Figure 6 of the paper: star-shaped queries on DBPEDIA — (a) average time
// and (b) % unanswered, for query sizes 10..50.

#include "common/bench_common.h"

int main() {
  amber::bench::RunShapeFigure("Figure 6: DBPEDIA, star-shaped queries",
                               "DBPEDIA", amber::QueryShape::kStar);
  return 0;
}
