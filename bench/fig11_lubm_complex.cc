// Figure 11 of the paper: complex-shaped queries on LUBM.

#include "common/bench_common.h"

int main() {
  amber::bench::RunShapeFigure("Figure 11: LUBM, complex-shaped queries",
                               "LUBM", amber::QueryShape::kComplex);
  return 0;
}
