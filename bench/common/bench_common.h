// Shared benchmark harness for the paper-reproduction binaries (one binary
// per table/figure; see docs/BENCHMARKS.md for the full catalogue).
//
// Protocol (Section 7.2 of the paper): per (dataset, shape, size) point,
// generate N queries grown from the data, run each engine with a per-query
// wall-clock budget, and report (a) the average time over *answered*
// queries and (b) the percentage of unanswered queries. An engine that
// answers nothing at size k is skipped for larger sizes (the paper's
// competitors "fail from size k onwards").
//
// Environment knobs so the suite scales from smoke test to full run:
//   AMBER_BENCH_SCALE       dataset scale factor        (default 1.0)
//   AMBER_BENCH_QUERIES     queries per point           (default 12)
//   AMBER_BENCH_TIMEOUT_MS  per-query budget            (default 1000)
//   AMBER_BENCH_SIZES       comma list of query sizes   (default 10..50)
//   AMBER_BENCH_EXEC_THREADS  ExecOptions::num_threads for every measured
//                           query (default 1 = serial; >1 exercises the
//                           parallel online stage; baseline engines ignore
//                           the knob)
//   AMBER_BENCH_JSON_DIR    if set, additionally write a machine-readable
//                           BENCH_<slug>.json result file into this
//                           directory (the perf-trajectory convention of
//                           docs/BENCHMARKS.md)

#ifndef AMBER_BENCH_COMMON_BENCH_COMMON_H_
#define AMBER_BENCH_COMMON_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/amber_engine.h"
#include "core/query_engine.h"
#include "gen/workload.h"
#include "rdf/term.h"

namespace amber {
namespace bench {

/// Harness configuration (see header comment for the env knobs).
struct BenchConfig {
  double scale = 1.0;
  int queries_per_point = 12;
  int timeout_ms = 1000;
  std::vector<int> sizes = {10, 20, 30, 40, 50};
  int exec_threads = 1;

  static BenchConfig FromEnv();
};

/// One benchmark dataset.
struct DatasetBundle {
  std::string name;
  std::vector<Triple> triples;
};

/// Builds one of the three paper datasets ("DBPEDIA", "YAGO", "LUBM") at
/// the configured scale.
DatasetBundle MakeDataset(const std::string& name, double scale);

/// All engines under comparison, built on one dataset. The display names
/// carry the paper-competitor analogue (docs/ARCHITECTURE.md, "Baselines").
struct EngineSuite {
  std::unique_ptr<QueryEngine> amber;
  std::unique_ptr<QueryEngine> triple_store;        // RDF-3X/Virtuoso-like
  std::unique_ptr<QueryEngine> triple_store_naive;  // Jena-like (no reorder)
  std::unique_ptr<QueryEngine> graph_backtrack;     // gStore/TurboHom-like

  std::vector<QueryEngine*> All() const {
    return {amber.get(), triple_store.get(), triple_store_naive.get(),
            graph_backtrack.get()};
  }
};

/// Builds the full suite (prints build progress to stderr).
EngineSuite BuildEngines(const DatasetBundle& dataset);

/// Result of one (engine, size) measurement point.
struct SeriesPoint {
  int size = 0;
  double avg_ms = 0.0;         // over answered queries
  double unanswered_pct = 0.0;
  int answered = 0;
  int total = 0;
};

/// Runs the Section 7.3 protocol for one engine over per-size query sets.
/// `exec_threads` > 1 runs every query with that many online-stage worker
/// threads (AMbER's parallel mode; other engines ignore the option).
std::vector<SeriesPoint> RunSeries(
    QueryEngine* engine, const std::vector<std::vector<std::string>>& queries,
    const std::vector<int>& sizes, int timeout_ms, int exec_threads = 1);

/// Generates per-size workloads for a dataset.
std::vector<std::vector<std::string>> MakeWorkloads(
    const DatasetBundle& dataset, QueryShape shape, const BenchConfig& config);

/// Prints the two paper-style tables "(a) average time" / "(b) % unanswered"
/// for one figure.
void PrintFigure(const std::string& figure_title,
                 const std::vector<QueryEngine*>& engines,
                 const std::vector<std::vector<SeriesPoint>>& series,
                 const std::vector<int>& sizes);

/// Writes BENCH_<slug>.json (slug derived from `figure_title`) into
/// `AMBER_BENCH_JSON_DIR` if that env var is set; no-op otherwise. The JSON
/// schema is documented in docs/BENCHMARKS.md and is the interchange format
/// for tracking perf across PRs.
void WriteSeriesJson(const std::string& figure_title,
                     const std::vector<QueryEngine*>& engines,
                     const std::vector<std::vector<SeriesPoint>>& series,
                     const BenchConfig& config);

/// Same, but with explicit series names — for drivers whose compared
/// configurations are not distinct QueryEngine objects (the ablations run
/// one engine under several option sets).
void WriteSeriesJson(const std::string& figure_title,
                     const std::vector<std::string>& series_names,
                     const std::vector<std::vector<SeriesPoint>>& series,
                     const BenchConfig& config);

/// Full driver for one of Figures 6-11.
void RunShapeFigure(const std::string& figure_title,
                    const std::string& dataset_name, QueryShape shape);

}  // namespace bench
}  // namespace amber

#endif  // AMBER_BENCH_COMMON_BENCH_COMMON_H_
