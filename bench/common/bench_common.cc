#include "common/bench_common.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "baseline/graph_backtrack.h"
#include "baseline/triple_store.h"
#include "gen/lubm.h"
#include "gen/scale_free.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace amber {
namespace bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  config.scale = EnvDouble("AMBER_BENCH_SCALE", 1.0);
  config.queries_per_point = EnvInt("AMBER_BENCH_QUERIES", 12);
  config.timeout_ms = EnvInt("AMBER_BENCH_TIMEOUT_MS", 1000);
  config.exec_threads = std::max(1, EnvInt("AMBER_BENCH_EXEC_THREADS", 1));
  if (const char* sizes = std::getenv("AMBER_BENCH_SIZES")) {
    config.sizes.clear();
    for (std::string_view piece : StrSplit(sizes, ',')) {
      int v = std::atoi(std::string(piece).c_str());
      if (v > 0) config.sizes.push_back(v);
    }
  }
  return config;
}

DatasetBundle MakeDataset(const std::string& name, double scale) {
  DatasetBundle bundle;
  bundle.name = name;
  if (name == "DBPEDIA") {
    bundle.triples = GenerateScaleFree(DbpediaProfile(scale));
  } else if (name == "YAGO") {
    bundle.triples = GenerateScaleFree(YagoProfile(scale));
  } else if (name == "LUBM") {
    LubmOptions options;
    options.universities = std::max(1, static_cast<int>(2 * scale));
    bundle.triples = GenerateLubm(options);
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    std::exit(1);
  }
  return bundle;
}

EngineSuite BuildEngines(const DatasetBundle& dataset) {
  EngineSuite suite;
  Stopwatch sw;
  {
    auto engine = AmberEngine::Build(dataset.triples);
    if (!engine.ok()) {
      std::fprintf(stderr, "AMbER build failed: %s\n",
                   engine.status().ToString().c_str());
      std::exit(1);
    }
    suite.amber =
        std::make_unique<AmberEngine>(std::move(engine).value());
  }
  std::fprintf(stderr, "  built AMbER in %.2fs\n", sw.ElapsedSeconds());
  sw.Reset();
  {
    auto store = TripleStoreEngine::Build(dataset.triples);
    if (!store.ok()) std::exit(1);
    suite.triple_store =
        std::make_unique<TripleStoreEngine>(std::move(store).value());
    TripleStoreEngine::Options naive;
    naive.reorder_patterns = false;
    naive.display_name = "TS-naive";
    auto store2 = TripleStoreEngine::Build(dataset.triples, naive);
    if (!store2.ok()) std::exit(1);
    suite.triple_store_naive =
        std::make_unique<TripleStoreEngine>(std::move(store2).value());
  }
  std::fprintf(stderr, "  built TripleStore x2 in %.2fs\n",
               sw.ElapsedSeconds());
  sw.Reset();
  {
    auto graph_bt = GraphBacktrackEngine::Build(dataset.triples);
    if (!graph_bt.ok()) std::exit(1);
    suite.graph_backtrack =
        std::make_unique<GraphBacktrackEngine>(std::move(graph_bt).value());
  }
  std::fprintf(stderr, "  built GraphBT in %.2fs\n", sw.ElapsedSeconds());
  return suite;
}

std::vector<std::vector<std::string>> MakeWorkloads(
    const DatasetBundle& dataset, QueryShape shape,
    const BenchConfig& config) {
  WorkloadGenerator gen(dataset.triples);
  std::vector<std::vector<std::string>> workloads;
  for (size_t i = 0; i < config.sizes.size(); ++i) {
    WorkloadOptions options;
    options.query_size = config.sizes[i];
    options.count = config.queries_per_point;
    options.seed = 1000 + config.sizes[i];
    workloads.push_back(gen.Generate(shape, options));
    std::fprintf(stderr, "  workload size %d: %zu queries\n", config.sizes[i],
                 workloads.back().size());
  }
  return workloads;
}

std::vector<SeriesPoint> RunSeries(
    QueryEngine* engine, const std::vector<std::vector<std::string>>& queries,
    const std::vector<int>& sizes, int timeout_ms, int exec_threads) {
  std::vector<SeriesPoint> series;
  bool dead = false;  // fully timed out at a previous size
  for (size_t i = 0; i < sizes.size(); ++i) {
    SeriesPoint point;
    point.size = sizes[i];
    point.total = static_cast<int>(queries[i].size());
    if (dead || queries[i].empty()) {
      point.unanswered_pct = 100.0;
      series.push_back(point);
      continue;
    }
    double total_ms = 0.0;
    for (const std::string& text : queries[i]) {
      ExecOptions options;
      options.timeout = std::chrono::milliseconds(timeout_ms);
      options.num_threads = exec_threads;
      auto result = engine->CountSparql(text, options);
      if (!result.ok()) continue;  // counted as unanswered
      if (result->stats.timed_out) continue;
      ++point.answered;
      total_ms += result->stats.elapsed_ms;
    }
    point.avg_ms = point.answered > 0 ? total_ms / point.answered : 0.0;
    point.unanswered_pct =
        100.0 * (point.total - point.answered) / std::max(1, point.total);
    if (point.answered == 0) dead = true;
    series.push_back(point);
  }
  return series;
}

void PrintFigure(const std::string& figure_title,
                 const std::vector<QueryEngine*>& engines,
                 const std::vector<std::vector<SeriesPoint>>& series,
                 const std::vector<int>& sizes) {
  std::printf("\n%s\n", figure_title.c_str());
  std::printf("(a) average time per answered query (ms)\n");
  std::printf("%-8s", "size");
  for (QueryEngine* e : engines) std::printf("%14s", e->name().c_str());
  std::printf("\n");
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-8d", sizes[i]);
    for (size_t e = 0; e < engines.size(); ++e) {
      if (series[e][i].answered == 0) {
        std::printf("%14s", "-");
      } else {
        std::printf("%14.3f", series[e][i].avg_ms);
      }
    }
    std::printf("\n");
  }
  std::printf("(b) %% unanswered queries (timeout)\n");
  std::printf("%-8s", "size");
  for (QueryEngine* e : engines) std::printf("%14s", e->name().c_str());
  std::printf("\n");
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-8d", sizes[i]);
    for (size_t e = 0; e < engines.size(); ++e) {
      std::printf("%13.1f%%", series[e][i].unanswered_pct);
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void WriteSeriesJson(const std::string& figure_title,
                     const std::vector<QueryEngine*>& engines,
                     const std::vector<std::vector<SeriesPoint>>& series,
                     const BenchConfig& config) {
  std::vector<std::string> names;
  names.reserve(engines.size());
  for (QueryEngine* e : engines) names.push_back(e->name());
  WriteSeriesJson(figure_title, names, series, config);
}

void WriteSeriesJson(const std::string& figure_title,
                     const std::vector<std::string>& series_names,
                     const std::vector<std::vector<SeriesPoint>>& series,
                     const BenchConfig& config) {
  const char* dir = std::getenv("AMBER_BENCH_JSON_DIR");
  if (!dir || !*dir) return;

  std::string slug;
  for (char c : figure_title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();

  std::string path = std::string(dir) + "/BENCH_" + slug + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }

  // EscapeNTriples escapes backslash, quote, \n, \r, \t — the same
  // sequences JSON needs for these characters.
  os << "{\n  \"figure\": \"" << EscapeNTriples(figure_title) << "\",\n";
  os << "  \"config\": {\"scale\": " << config.scale
     << ", \"queries_per_point\": " << config.queries_per_point
     << ", \"timeout_ms\": " << config.timeout_ms << "},\n";
  os << "  \"engines\": [\n";
  for (size_t e = 0; e < series_names.size(); ++e) {
    os << "    {\"name\": \"" << EscapeNTriples(series_names[e])
       << "\", \"series\": [";
    for (size_t i = 0; i < series[e].size(); ++i) {
      const SeriesPoint& p = series[e][i];
      os << (i ? ", " : "") << "{\"size\": " << p.size << ", \"avg_ms\": "
         << p.avg_ms << ", \"unanswered_pct\": " << p.unanswered_pct
         << ", \"answered\": " << p.answered << ", \"total\": " << p.total
         << "}";
    }
    os << "]}" << (e + 1 < series_names.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

void RunShapeFigure(const std::string& figure_title,
                    const std::string& dataset_name, QueryShape shape) {
  BenchConfig config = BenchConfig::FromEnv();
  std::fprintf(stderr,
               "[%s] scale=%.2f queries/point=%d timeout=%dms exec_threads=%d\n",
               figure_title.c_str(), config.scale, config.queries_per_point,
               config.timeout_ms, config.exec_threads);
  DatasetBundle dataset = MakeDataset(dataset_name, config.scale);
  std::fprintf(stderr, "  dataset %s: %zu triples\n", dataset.name.c_str(),
               dataset.triples.size());
  EngineSuite suite = BuildEngines(dataset);
  auto workloads = MakeWorkloads(dataset, shape, config);

  std::vector<QueryEngine*> engines = suite.All();
  std::vector<std::vector<SeriesPoint>> series;
  for (QueryEngine* engine : engines) {
    std::fprintf(stderr, "  running %s...\n", engine->name().c_str());
    series.push_back(RunSeries(engine, workloads, config.sizes,
                               config.timeout_ms, config.exec_threads));
  }
  std::printf(
      "\nEngine analogues (docs/ARCHITECTURE.md, \"Baselines\"): "
      "TripleStore ~ Virtuoso/x-RDF-3X, TS-naive ~ Jena, "
      "GraphBT ~ gStore/TurboHom++ (no AMbER indexes)\n");
  PrintFigure(figure_title, engines, series, config.sizes);
  WriteSeriesJson(figure_title, engines, series, config);
}

}  // namespace bench
}  // namespace amber
