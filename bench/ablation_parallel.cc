// Parallel online-stage ablation (ROADMAP / the paper's "parallel
// processing version" future-work item): AMbER thread sweep on
// table1-class workloads — complex queries on DBPEDIA-profile data.
//
// One engine, one workload set, ExecOptions::num_threads swept over
// {1, 2, 4, 8} (override with AMBER_BENCH_THREAD_SWEEP, a comma list).
// Emits BENCH_ablation_parallel.json with one series per thread count
// ("AMbER-1t".."AMbER-8t"); the "size" axis stays the query size.
//
// Besides timing, the driver *verifies the determinism contract* on the
// workload: for every size, the first queries are materialized at 1 thread
// and at the sweep maximum and their row vectors must be identical —
// including order — or the run aborts non-zero. Expected timing shape:
// ≥1.5x speedup at 4 threads on a multi-core host; parity (not
// regression) on a single core, where the sweep degenerates to queueing
// the same serial work.
//
// Env knobs (bench_common.h): AMBER_BENCH_SCALE / _QUERIES / _TIMEOUT_MS /
// _SIZES / _JSON_DIR, plus AMBER_BENCH_THREAD_SWEEP above.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "sparql/parser.h"
#include "util/string_util.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  if (std::getenv("AMBER_BENCH_SIZES") == nullptr) config.sizes = {30, 50};

  std::vector<int> sweep = {1, 2, 4, 8};
  if (const char* env = std::getenv("AMBER_BENCH_THREAD_SWEEP")) {
    sweep.clear();
    for (std::string_view piece : StrSplit(env, ',')) {
      int v = std::atoi(std::string(piece).c_str());
      if (v > 0) sweep.push_back(v);
    }
    if (sweep.empty()) sweep = {1};
  }

  DatasetBundle dataset = MakeDataset("DBPEDIA", config.scale);
  std::fprintf(stderr, "[Ablation parallel] dataset: %zu triples\n",
               dataset.triples.size());
  auto built = AmberEngine::Build(dataset.triples);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  AmberEngine engine = std::move(built).value();
  auto workloads = MakeWorkloads(dataset, QueryShape::kComplex, config);

  // Determinism gate before timing: serial vs max-threads rows must be
  // bit-identical (order included) on a sample of the workload.
  const int max_threads = *std::max_element(sweep.begin(), sweep.end());
  if (max_threads > 1) {
    for (size_t i = 0; i < workloads.size(); ++i) {
      for (size_t qi = 0; qi < workloads[i].size() && qi < 2; ++qi) {
        const std::string& text = workloads[i][qi];
        ExecOptions serial;
        serial.timeout = std::chrono::milliseconds(config.timeout_ms);
        ExecOptions parallel = serial;
        parallel.num_threads = max_threads;
        auto a = engine.MaterializeSparql(text, serial);
        auto b = engine.MaterializeSparql(text, parallel);
        if (!a.ok() || !b.ok()) continue;
        if (a->stats.timed_out || b->stats.timed_out) continue;
        if (a->rows != b->rows) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION at size %d query %zu: serial "
                       "%zu rows vs %d-thread %zu rows (or order differs)\n",
                       config.sizes[i], qi, a->rows.size(), max_threads,
                       b->rows.size());
          return 1;
        }
      }
    }
    std::fprintf(stderr, "  determinism gate passed (1 vs %d threads)\n",
                 max_threads);
  }

  std::vector<std::string> names;
  std::vector<std::vector<SeriesPoint>> series;
  for (int threads : sweep) {
    names.push_back("AMbER-" + std::to_string(threads) + "t");
    std::fprintf(stderr, "  running %s...\n", names.back().c_str());
    series.push_back(RunSeries(&engine, workloads, config.sizes,
                               config.timeout_ms, threads));
  }

  std::printf("\nAblation: parallel online stage (complex queries, "
              "DBPEDIA-like data)\n");
  std::printf("%-8s", "size");
  for (const std::string& n : names) std::printf("%14s", n.c_str());
  std::printf("%14s\n", "speedup@max");
  for (size_t i = 0; i < config.sizes.size(); ++i) {
    std::printf("%-8d", config.sizes[i]);
    for (const auto& s : series) {
      if (s[i].answered > 0) {
        std::printf("%12.3fms", s[i].avg_ms);
      } else {
        std::printf("%14s", "-");
      }
    }
    const double base = series.front()[i].avg_ms;
    const double best = series.back()[i].avg_ms;
    if (series.front()[i].answered > 0 && series.back()[i].answered > 0 &&
        best > 0) {
      std::printf("%13.2fx", base / best);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: near-linear gains while chunks outnumber "
              "cores; parity on one core (rows identical by the "
              "deterministic merge either way).\n");

  WriteSeriesJson("Ablation parallel", names, series, config);
  return 0;
}
