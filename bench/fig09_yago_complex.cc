// Figure 9 of the paper: complex-shaped queries on YAGO.

#include "common/bench_common.h"

int main() {
  amber::bench::RunShapeFigure("Figure 9: YAGO, complex-shaped queries",
                               "YAGO", amber::QueryShape::kComplex);
  return 0;
}
