// Figure 8 of the paper: star-shaped queries on YAGO.

#include "common/bench_common.h"

int main() {
  amber::bench::RunShapeFigure("Figure 8: YAGO, star-shaped queries", "YAGO",
                               amber::QueryShape::kStar);
  return 0;
}
