// Cold-start benchmark: how fast can a QueryEngine instance go from a
// persisted offline artifact to answering its first query? Compares the
// length-prefixed stream format (Save/Load) against the mmap'ed AMF format
// (SaveFile/OpenFile) per dataset: artifact size, save time, load/open
// time, and first-query latency on the freshly restored engine.
//
// This is the driver behind the ROADMAP "persisted-artifact performance"
// item: a sharded deployment fans out over many engine instances, so
// restore cost is paid per shard and dominates elasticity.
//
// Extra knobs on top of the common AMBER_BENCH_* ones:
//   AMBER_COLD_START_REPS         load repetitions per format (default 5)
//   AMBER_COLD_START_STREAM_ONLY  if set, skip the AMF series — used to
//                                 capture the pre-AMF baseline JSON

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "gen/workload.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace {

std::string TempArtifactPath(const std::string& dataset, const char* ext) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp && *tmp) ? tmp : "/tmp";
  return dir + "/amber_cold_start_" + dataset + "." + ext;
}

}  // namespace

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  const int reps = [] {
    const char* v = std::getenv("AMBER_COLD_START_REPS");
    int n = v ? std::atoi(v) : 5;
    return n > 0 ? n : 5;
  }();
  const bool stream_only =
      std::getenv("AMBER_COLD_START_STREAM_ONLY") != nullptr;

  const std::vector<std::string> metric_names = {
      "stream_load_ms",      "amf_open_ms",         "stream_first_query_ms",
      "amf_first_query_ms",  "stream_save_ms",      "amf_save_ms",
      "stream_bytes_mb",     "amf_bytes_mb"};
  // One series per metric; each point's `size` is the dataset ordinal
  // (0=DBPEDIA, 1=YAGO, 2=LUBM) and `avg_ms` carries the value.
  std::vector<std::vector<SeriesPoint>> series(metric_names.size());

  std::printf("Cold start: stream serde vs mmap AMF (scale %.2f, %d reps)\n\n",
              config.scale, reps);
  std::printf("%-10s %10s %12s %12s %12s %14s %14s\n", "dataset", "format",
              "size", "save (ms)", "load (ms)", "1st query (ms)",
              "speedup");

  const char* dataset_names[] = {"DBPEDIA", "YAGO", "LUBM"};
  for (int di = 0; di < 3; ++di) {
    const std::string name = dataset_names[di];
    DatasetBundle dataset = MakeDataset(name, config.scale);
    auto built = AmberEngine::Build(dataset.triples);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }

    // One representative query, grown from the data like the paper's
    // workloads, issued once on every freshly restored engine.
    WorkloadGenerator gen(dataset.triples);
    WorkloadOptions wopts;
    wopts.query_size = 4;
    wopts.count = 1;
    wopts.seed = 42 + di;
    std::vector<std::string> queries = gen.Generate(QueryShape::kStar, wopts);
    if (queries.empty()) {
      std::fprintf(stderr, "no query generated for %s\n", name.c_str());
      return 1;
    }
    const std::string& query = queries.front();

    struct FormatResult {
      double save_ms = 0;
      double load_ms = 0;
      double first_query_ms = 0;
      uint64_t bytes = 0;
    };
    FormatResult stream, amf;

    // --- Stream format -----------------------------------------------------
    const std::string stream_path = TempArtifactPath(name, "bin");
    {
      Stopwatch sw;
      std::ofstream os(stream_path, std::ios::binary | std::ios::trunc);
      if (!built->Save(os).ok()) return 1;
      os.close();
      stream.save_ms = sw.ElapsedMillis();
      std::ifstream size_probe(stream_path,
                               std::ios::binary | std::ios::ate);
      stream.bytes = static_cast<uint64_t>(size_probe.tellg());
    }
    for (int r = 0; r < reps; ++r) {
      Stopwatch sw;
      std::ifstream is(stream_path, std::ios::binary);
      auto loaded = AmberEngine::Load(is);
      if (!loaded.ok()) {
        std::fprintf(stderr, "stream load failed: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      stream.load_ms += sw.ElapsedMillis();
      sw.Reset();
      auto count = loaded->CountSparql(query, {});
      if (!count.ok()) return 1;
      stream.first_query_ms += sw.ElapsedMillis();
    }
    stream.load_ms /= reps;
    stream.first_query_ms /= reps;
    std::printf("%-10s %10s %12s %12.2f %12.3f %14.3f %14s\n", name.c_str(),
                "stream", FormatBytes(stream.bytes).c_str(), stream.save_ms,
                stream.load_ms, stream.first_query_ms, "1.0x");

    // --- AMF (mmap) format -------------------------------------------------
    if (!stream_only) {
      const std::string amf_path = TempArtifactPath(name, "amf");
      {
        Stopwatch sw;
        if (!built->SaveFile(amf_path).ok()) return 1;
        amf.save_ms = sw.ElapsedMillis();
        std::ifstream size_probe(amf_path, std::ios::binary | std::ios::ate);
        amf.bytes = static_cast<uint64_t>(size_probe.tellg());
      }
      for (int r = 0; r < reps; ++r) {
        Stopwatch sw;
        auto opened = AmberEngine::OpenFile(amf_path);
        if (!opened.ok()) {
          std::fprintf(stderr, "AMF open failed: %s\n",
                       opened.status().ToString().c_str());
          return 1;
        }
        amf.load_ms += sw.ElapsedMillis();
        sw.Reset();
        auto count = opened->CountSparql(query, {});
        if (!count.ok()) return 1;
        amf.first_query_ms += sw.ElapsedMillis();
      }
      amf.load_ms /= reps;
      amf.first_query_ms /= reps;
      const double speedup =
          amf.load_ms > 0 ? stream.load_ms / amf.load_ms : 0.0;
      std::printf("%-10s %10s %12s %12.2f %12.3f %14.3f %13.1fx\n",
                  name.c_str(), "AMF-mmap", FormatBytes(amf.bytes).c_str(),
                  amf.save_ms, amf.load_ms, amf.first_query_ms, speedup);
    }

    auto point = [di](double value) {
      SeriesPoint p;
      p.size = di;
      p.avg_ms = value;
      p.answered = 1;
      p.total = 1;
      return p;
    };
    series[0].push_back(point(stream.load_ms));
    series[1].push_back(point(amf.load_ms));
    series[2].push_back(point(stream.first_query_ms));
    series[3].push_back(point(amf.first_query_ms));
    series[4].push_back(point(stream.save_ms));
    series[5].push_back(point(amf.save_ms));
    series[6].push_back(point(stream.bytes / 1e6));
    series[7].push_back(point(amf.bytes / 1e6));
  }

  std::printf(
      "\nExpected shape: AMF open cost is header/table validation, the "
      "structural scans over the borrowed arrays (reads, no copies or "
      "allocations), and the dictionary hash rebuild — well below the "
      "stream format's full deserialize, which pays allocation + copy on "
      "top of the same reads.\n");

  std::vector<std::vector<SeriesPoint>> json_series = series;
  std::vector<std::string> json_names = metric_names;
  if (stream_only) {
    // Keep only the stream metrics (indices 0, 2, 4, 6).
    json_series = {series[0], series[2], series[4], series[6]};
    json_names = {metric_names[0], metric_names[2], metric_names[4],
                  metric_names[6]};
  }
  WriteSeriesJson("Cold start", json_names, json_series, config);
  return 0;
}
