// Ablation A (docs/BENCHMARKS.md): value of the Section 5.3 vertex-ordering
// heuristics r1/r2. Runs AMbER on complex queries with the heuristics on
// vs off (index-order, still connectivity-constrained).

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  DatasetBundle dataset = MakeDataset("DBPEDIA", config.scale);
  auto engine = AmberEngine::Build(dataset.triples);
  if (!engine.ok()) return 1;
  auto workloads = MakeWorkloads(dataset, QueryShape::kComplex, config);

  std::printf("\nAblation A: vertex-ordering heuristics (r1/r2, Section 5.3) "
              "on DBPEDIA complex queries\n");
  std::printf("%-8s %18s %18s %14s %14s\n", "size", "ordered avg (ms)",
              "unordered avg (ms)", "ordered %TO", "unordered %TO");
  for (size_t i = 0; i < config.sizes.size(); ++i) {
    double ms[2] = {0, 0};
    int answered[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      for (const std::string& text : workloads[i]) {
        ExecOptions options;
        options.timeout = std::chrono::milliseconds(config.timeout_ms);
        options.plan.use_ordering_heuristics = (mode == 0);
        auto result = engine->CountSparql(text, options);
        if (!result.ok() || result->stats.timed_out) continue;
        ++answered[mode];
        ms[mode] += result->stats.elapsed_ms;
      }
    }
    const int total = static_cast<int>(workloads[i].size());
    std::printf("%-8d %18.3f %18.3f %13.1f%% %13.1f%%\n", config.sizes[i],
                answered[0] ? ms[0] / answered[0] : -1.0,
                answered[1] ? ms[1] / answered[1] : -1.0,
                100.0 * (total - answered[0]) / std::max(1, total),
                100.0 * (total - answered[1]) / std::max(1, total));
  }
  std::printf("\nExpected shape: ordered never slower on average; the gap "
              "grows with query size.\n");
  return 0;
}
