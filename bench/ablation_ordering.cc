// Ablation A (docs/BENCHMARKS.md): value of the Section 5.3 vertex-ordering
// heuristics r1/r2. Runs AMbER on complex queries with the heuristics on
// vs off (index-order, still connectivity-constrained). With
// AMBER_BENCH_JSON_DIR set, both series are written as
// BENCH_ablation_a_ordering_heuristics.json.

#include <cstdio>
#include <vector>

#include "common/bench_common.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  DatasetBundle dataset = MakeDataset("DBPEDIA", config.scale);
  auto engine = AmberEngine::Build(dataset.triples);
  if (!engine.ok()) return 1;
  auto workloads = MakeWorkloads(dataset, QueryShape::kComplex, config);

  // Same protocol as RunSeries, including the dead-mode skip rule ("fails
  // from size k onwards").
  const std::vector<std::string> modes = {"AMbER-ordered", "AMbER-unordered"};
  std::vector<std::vector<SeriesPoint>> series(modes.size());
  std::vector<bool> dead(modes.size(), false);

  for (size_t i = 0; i < config.sizes.size(); ++i) {
    for (size_t m = 0; m < modes.size(); ++m) {
      SeriesPoint point;
      point.size = config.sizes[i];
      point.total = static_cast<int>(workloads[i].size());
      if (dead[m] || workloads[i].empty()) {
        point.unanswered_pct = 100.0;
        series[m].push_back(point);
        continue;
      }
      double total_ms = 0.0;
      for (const std::string& text : workloads[i]) {
        ExecOptions options;
        options.timeout = std::chrono::milliseconds(config.timeout_ms);
        options.plan.use_ordering_heuristics = (m == 0);
        auto result = engine->CountSparql(text, options);
        if (!result.ok() || result->stats.timed_out) continue;
        ++point.answered;
        total_ms += result->stats.elapsed_ms;
      }
      point.avg_ms = point.answered > 0 ? total_ms / point.answered : 0.0;
      point.unanswered_pct = 100.0 * (point.total - point.answered) /
                             std::max(1, point.total);
      if (point.answered == 0) dead[m] = true;
      series[m].push_back(point);
    }
  }

  std::printf("\nAblation A: vertex-ordering heuristics (r1/r2, Section 5.3) "
              "on DBPEDIA complex queries\n");
  std::printf("%-8s %18s %18s %14s %14s\n", "size", "ordered avg (ms)",
              "unordered avg (ms)", "ordered %TO", "unordered %TO");
  for (size_t i = 0; i < config.sizes.size(); ++i) {
    std::printf("%-8d %18.3f %18.3f %13.1f%% %13.1f%%\n", config.sizes[i],
                series[0][i].answered ? series[0][i].avg_ms : -1.0,
                series[1][i].answered ? series[1][i].avg_ms : -1.0,
                series[0][i].unanswered_pct, series[1][i].unanswered_pct);
  }
  std::printf("\nExpected shape: ordered never slower on average; the gap "
              "grows with query size.\n");
  WriteSeriesJson("Ablation A ordering heuristics", modes, series, config);
  return 0;
}
