// Table 4 of the paper: benchmark statistics — number of triples, vertices,
// edges and edge types per dataset. (Paper full-scale reference: DBPEDIA
// 33.0M/4.98M/15.0M/676, YAGO 35.5M/3.16M/10.7M/44, LUBM100
// 13.8M/2.18M/8.95M/13.)

#include <cstdio>

#include "common/bench_common.h"
#include "graph/multigraph.h"
#include "rdf/encoded_dataset.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  std::printf("Table 4: benchmark statistics (scale factor %.2f)\n\n",
              config.scale);
  std::printf("%-10s %12s %12s %12s %12s\n", "dataset", "# triples",
              "# vertices", "# edges", "# edge types");
  for (const char* name : {"DBPEDIA", "YAGO", "LUBM"}) {
    DatasetBundle dataset = MakeDataset(name, config.scale);
    auto encoded = EncodedDataset::Encode(dataset.triples);
    if (!encoded.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   encoded.status().ToString().c_str());
      return 1;
    }
    Multigraph g = Multigraph::FromDataset(*encoded);
    std::printf("%-10s %12zu %12zu %12llu %12zu\n", name,
                dataset.triples.size(), g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()),
                g.NumEdgeTypes());
  }
  std::printf(
      "\nExpected shape (paper Table 4): DBPEDIA has by far the most edge "
      "types (676), YAGO 44, LUBM 13; vertex/edge ratios comparable.\n");
  return 0;
}
