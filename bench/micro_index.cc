// Micro-benchmarks (google-benchmark) for the three index structures:
// R-tree dominance query vs full synopsis scan, OTIL superset query vs
// adjacency-group scan, and attribute-list intersection. These quantify
// the per-operation speedups that the ablation benches observe end-to-end.

#include <benchmark/benchmark.h>

#include "gen/scale_free.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "rdf/encoded_dataset.h"
#include "util/random.h"

namespace amber {
namespace {

struct Fixture {
  Multigraph graph;
  IndexSet indexes;
  std::vector<Synopsis> synopses;

  static const Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      ScaleFreeOptions options;
      options.seed = 7;
      options.num_entities = 20000;
      options.num_edge_triples = 60000;
      options.num_predicates = 44;
      auto triples = GenerateScaleFree(options);
      auto encoded = EncodedDataset::Encode(triples);
      f->graph = Multigraph::FromDataset(*encoded);
      f->indexes = IndexSet::Build(f->graph);
      f->synopses = ComputeAllSynopses(f->graph);
      return f;
    }();
    return *fixture;
  }
};

Synopsis QueryFor(const Fixture& f, uint64_t i) {
  // A real vertex's synopsis, weakened: guarantees non-empty results.
  Synopsis q = f.synopses[i % f.synopses.size()];
  for (int k = 0; k < Synopsis::kNumFields; ++k) {
    q.f[k] = std::max(0, q.f[k] - 1);
  }
  return q.NormalizedForQuery();
}

void BM_RTreeDominance(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  uint64_t i = 0;
  std::vector<VertexId> out;
  for (auto _ : state) {
    out = f.indexes.signature.Candidates(QueryFor(f, i++));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeDominance);

void BM_FullSynopsisScan(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  uint64_t i = 0;
  std::vector<VertexId> out;
  for (auto _ : state) {
    Synopsis q = QueryFor(f, i++);
    out.clear();
    for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
      if (f.synopses[v].Dominates(q)) out.push_back(v);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FullSynopsisScan);

void BM_OtilSuperset(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(3);
  std::vector<VertexId> out;
  // Pre-pick high-degree vertices so the query does real work.
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    if (f.graph.GroupCount(v, Direction::kIn) > 50) hubs.push_back(v);
  }
  if (hubs.empty()) hubs.push_back(0);
  uint64_t i = 0;
  std::vector<EdgeTypeId> types = {1};
  for (auto _ : state) {
    out.clear();
    f.indexes.neighborhood.SupersetNeighbors(hubs[i++ % hubs.size()],
                                             Direction::kIn, types, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OtilSuperset);

void BM_AdjacencyScanSuperset(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    if (f.graph.GroupCount(v, Direction::kIn) > 50) hubs.push_back(v);
  }
  if (hubs.empty()) hubs.push_back(0);
  uint64_t i = 0;
  std::vector<EdgeTypeId> types = {1};
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    VertexId v = hubs[i++ % hubs.size()];
    const size_t n = f.graph.GroupCount(v, Direction::kIn);
    for (size_t g = 0; g < n; ++g) {
      GroupView view = f.graph.Group(v, Direction::kIn, g);
      if (std::binary_search(view.types.begin(), view.types.end(),
                             types[0])) {
        out.push_back(view.neighbor);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AdjacencyScanSuperset);

void BM_AttributeIntersection(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  uint64_t i = 0;
  const size_t num_attrs = f.indexes.attribute.NumAttributes();
  for (auto _ : state) {
    std::vector<AttributeId> attrs = {
        static_cast<AttributeId>(i % num_attrs),
        static_cast<AttributeId>((i * 7 + 1) % num_attrs)};
    if (attrs[0] > attrs[1]) std::swap(attrs[0], attrs[1]);
    auto out = f.indexes.attribute.Candidates(attrs);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AttributeIntersection);

void BM_MultigraphEdgeLookup(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(11);
  const size_t n = f.graph.NumVertices();
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    benchmark::DoNotOptimize(f.graph.MultiEdge(a, Direction::kOut, b));
  }
}
BENCHMARK(BM_MultigraphEdgeLookup);

}  // namespace
}  // namespace amber

BENCHMARK_MAIN();
