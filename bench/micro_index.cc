// Micro-benchmarks (google-benchmark) for the three index structures and
// the hot-path intersection kernels: R-tree dominance query vs full
// synopsis scan, OTIL superset query vs adjacency-group scan vs per-
// candidate Contains probes, attribute-list intersection, and the
// merge/gallop/k-way kernels of util/intersect.h against the naive
// std::set_intersection baseline. These quantify the per-operation
// speedups that the ablation and figure benches observe end-to-end.
//
// With AMBER_BENCH_JSON_DIR set, results are additionally written to
// $AMBER_BENCH_JSON_DIR/BENCH_micro_index.json (google-benchmark's JSON
// format — the micro-op counterpart of the harness's BENCH_*.json files).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "gen/scale_free.h"
#include "graph/multigraph.h"
#include "index/index_set.h"
#include "rdf/encoded_dataset.h"
#include "util/intersect.h"
#include "util/random.h"

namespace amber {
namespace {

struct Fixture {
  Multigraph graph;
  IndexSet indexes;
  std::vector<Synopsis> synopses;

  static const Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      ScaleFreeOptions options;
      options.seed = 7;
      options.num_entities = 20000;
      options.num_edge_triples = 60000;
      options.num_predicates = 44;
      auto triples = GenerateScaleFree(options);
      auto encoded = EncodedDataset::Encode(triples);
      f->graph = Multigraph::FromDataset(*encoded);
      f->indexes =
          IndexSet::Build(f->graph, encoded->attribute_values,
                          encoded->dictionaries.attr_predicates().size());
      f->synopses = ComputeAllSynopses(f->graph);
      return f;
    }();
    return *fixture;
  }
};

Synopsis QueryFor(const Fixture& f, uint64_t i) {
  // A real vertex's synopsis, weakened: guarantees non-empty results.
  Synopsis q = f.synopses[i % f.synopses.size()];
  for (int k = 0; k < Synopsis::kNumFields; ++k) {
    q.f[k] = std::max(0, q.f[k] - 1);
  }
  return q.NormalizedForQuery();
}

void BM_RTreeDominance(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  uint64_t i = 0;
  std::vector<VertexId> out;
  for (auto _ : state) {
    out = f.indexes.signature.Candidates(QueryFor(f, i++));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeDominance);

void BM_FullSynopsisScan(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  uint64_t i = 0;
  std::vector<VertexId> out;
  for (auto _ : state) {
    Synopsis q = QueryFor(f, i++);
    out.clear();
    for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
      if (f.synopses[v].Dominates(q)) out.push_back(v);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FullSynopsisScan);

void BM_OtilSuperset(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(3);
  std::vector<VertexId> out;
  // Pre-pick high-degree vertices so the query does real work.
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    if (f.graph.GroupCount(v, Direction::kIn) > 50) hubs.push_back(v);
  }
  if (hubs.empty()) hubs.push_back(0);
  uint64_t i = 0;
  std::vector<EdgeTypeId> types = {1};
  for (auto _ : state) {
    out.clear();
    f.indexes.neighborhood.SupersetNeighbors(hubs[i++ % hubs.size()],
                                             Direction::kIn, types, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OtilSuperset);

void BM_AdjacencyScanSuperset(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  std::vector<VertexId> hubs;
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    if (f.graph.GroupCount(v, Direction::kIn) > 50) hubs.push_back(v);
  }
  if (hubs.empty()) hubs.push_back(0);
  uint64_t i = 0;
  std::vector<EdgeTypeId> types = {1};
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    VertexId v = hubs[i++ % hubs.size()];
    const size_t n = f.graph.GroupCount(v, Direction::kIn);
    for (size_t g = 0; g < n; ++g) {
      GroupView view = f.graph.Group(v, Direction::kIn, g);
      if (std::binary_search(view.types.begin(), view.types.end(),
                             types[0])) {
        out.push_back(view.neighbor);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AdjacencyScanSuperset);

void BM_AttributeIntersection(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  uint64_t i = 0;
  const size_t num_attrs = f.indexes.attribute.NumAttributes();
  for (auto _ : state) {
    std::vector<AttributeId> attrs = {
        static_cast<AttributeId>(i % num_attrs),
        static_cast<AttributeId>((i * 7 + 1) % num_attrs)};
    if (attrs[0] > attrs[1]) std::swap(attrs[0], attrs[1]);
    auto out = f.indexes.attribute.Candidates(attrs);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AttributeIntersection);

void BM_MultigraphEdgeLookup(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  Rng rng(11);
  const size_t n = f.graph.NumVertices();
  for (auto _ : state) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    benchmark::DoNotOptimize(f.graph.MultiEdge(a, Direction::kOut, b));
  }
}
BENCHMARK(BM_MultigraphEdgeLookup);

// --- Intersection kernels (util/intersect.h) -------------------------------
// Args: {|short list|, skew} — the long list is |short| * skew. Covers the
// balanced case (merge wins) and hub-vs-selective skews (galloping wins).

std::vector<VertexId> MakeSortedList(Rng* rng, size_t size,
                                     uint64_t universe) {
  std::vector<VertexId> out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(static_cast<VertexId>(rng->Uniform(universe)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct ListPair {
  std::vector<VertexId> a, b;
};

ListPair MakePair(size_t short_size, size_t skew) {
  Rng rng(short_size * 31 + skew);
  const size_t long_size = short_size * skew;
  ListPair p;
  p.a = MakeSortedList(&rng, short_size, long_size * 2 + 16);
  p.b = MakeSortedList(&rng, long_size, long_size * 2 + 16);
  return p;
}

void BM_IntersectNaiveBaseline(benchmark::State& state) {
  // The seed's copy-based kernel: std::set_intersection into a vector.
  const ListPair p = MakePair(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)));
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    std::set_intersection(p.a.begin(), p.a.end(), p.b.begin(), p.b.end(),
                          std::back_inserter(out));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * (p.a.size() + p.b.size())));
}
BENCHMARK(BM_IntersectNaiveBaseline)
    ->Args({1024, 1})
    ->Args({128, 64})
    ->Args({64, 1000});

void BM_IntersectAdaptive(benchmark::State& state) {
  // The hot-path kernel: linear merge below kGallopSkewRatio, galloping
  // above it, writing into a reused buffer.
  const ListPair p = MakePair(static_cast<size_t>(state.range(0)),
                              static_cast<size_t>(state.range(1)));
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    IntersectSortedAppend(std::span<const VertexId>(p.a),
                          std::span<const VertexId>(p.b), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * (p.a.size() + p.b.size())));
}
BENCHMARK(BM_IntersectAdaptive)
    ->Args({1024, 1})
    ->Args({128, 64})
    ->Args({64, 1000});

void BM_IntersectKWayGallop(benchmark::State& state) {
  // Leapfrog over one selective and three hub-sized lists.
  Rng rng(99);
  std::vector<std::vector<VertexId>> lists;
  lists.push_back(MakeSortedList(&rng, 64, 40000));
  for (int i = 0; i < 3; ++i) {
    lists.push_back(MakeSortedList(&rng, 20000, 40000));
  }
  std::vector<std::span<const VertexId>> views;
  for (const auto& l : lists) views.emplace_back(l.data(), l.size());
  std::vector<const VertexId*> cursors;
  std::vector<VertexId> out;
  for (auto _ : state) {
    IntersectKWay(std::span<const std::span<const VertexId>>(views), &cursors,
                  &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IntersectKWayGallop);

// --- Probe-without-materialize vs materialize-then-search ------------------
// The matcher's cutover in one micro-op: test 32 candidates against a hub's
// neighbourhood either by materializing + binary-searching the hub list or
// by per-candidate OTIL Contains probes from the candidates' small tries.

// Shared setup so the pair stays comparable: high-degree hubs, 32 random
// candidates to test against each hub's in-neighbourhood, one edge type.
struct ProbeFixture {
  std::vector<VertexId> hubs;
  std::vector<VertexId> candidates;
  std::vector<EdgeTypeId> types = {1};
};

ProbeFixture MakeProbeFixture(const Fixture& f) {
  ProbeFixture p;
  for (VertexId v = 0; v < f.graph.NumVertices(); ++v) {
    if (f.graph.GroupCount(v, Direction::kIn) > 50) p.hubs.push_back(v);
  }
  if (p.hubs.empty()) p.hubs.push_back(0);
  Rng rng(17);
  for (int i = 0; i < 32; ++i) {
    p.candidates.push_back(
        static_cast<VertexId>(rng.Uniform(f.graph.NumVertices())));
  }
  return p;
}

void BM_OtilMaterializeThenSearch(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const ProbeFixture p = MakeProbeFixture(f);
  std::vector<VertexId> list;
  uint64_t i = 0;
  for (auto _ : state) {
    list.clear();
    f.indexes.neighborhood.SupersetNeighbors(p.hubs[i++ % p.hubs.size()],
                                             Direction::kIn, p.types, &list);
    int hits = 0;
    for (VertexId c : p.candidates) {
      hits += std::binary_search(list.begin(), list.end(), c) ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OtilMaterializeThenSearch);

void BM_OtilContainsProbe(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const ProbeFixture p = MakeProbeFixture(f);
  NeighborhoodIndex::Scratch scratch;
  uint64_t i = 0;
  for (auto _ : state) {
    const VertexId hub = p.hubs[i++ % p.hubs.size()];
    int hits = 0;
    for (VertexId c : p.candidates) {
      // Probed from the candidate's side, as the matcher does: the edge
      // c --types--> hub is outgoing from c.
      hits += f.indexes.neighborhood.Contains(c, Direction::kOut, p.types,
                                              hub, &scratch)
                  ? 1
                  : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_OtilContainsProbe);

}  // namespace
}  // namespace amber

// BENCHMARK_MAIN, plus the repo's BENCH_*.json convention: when
// AMBER_BENCH_JSON_DIR is set (and no explicit --benchmark_out is given),
// emit google-benchmark's JSON there as BENCH_micro_index.json.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  const char* dir = std::getenv("AMBER_BENCH_JSON_DIR");
  if (dir != nullptr && *dir != '\0' && !has_out) {
    out_flag =
        std::string("--benchmark_out=") + dir + "/BENCH_micro_index.json";
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
