// Table 5 of the paper: offline stage — database (multigraph) construction
// time/size and index construction time/size per dataset.

#include <cstdio>

#include "common/bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  std::printf(
      "Table 5: offline stage — database and index construction "
      "(scale %.2f)\n\n",
      config.scale);
  std::printf("%-10s %16s %12s %16s %12s\n", "dataset", "db build (s)",
              "db size", "index build (s)", "index size");
  for (const char* name : {"DBPEDIA", "YAGO", "LUBM"}) {
    DatasetBundle dataset = MakeDataset(name, config.scale);
    auto engine = AmberEngine::Build(dataset.triples);
    if (!engine.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    const AmberEngine::BuildTimings& t = engine->timings();
    const uint64_t db_size =
        engine->graph().ByteSize() + engine->dictionaries().ByteSize();
    const uint64_t index_size = engine->indexes().ByteSize();
    std::printf("%-10s %16.2f %12s %16.2f %12s\n", name,
                t.database_seconds(), FormatBytes(db_size).c_str(),
                t.index_seconds, FormatBytes(index_size).c_str());
  }
  std::printf(
      "\nExpected shape (paper Table 5): build time and sizes proportional "
      "to triple/edge counts; index size same order as the database.\n");
  return 0;
}
