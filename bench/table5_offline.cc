// Table 5 of the paper: offline stage — database (multigraph) construction
// time/size and index construction time/size per dataset.
//
// Emits BENCH_table_5_offline.json like the other drivers (one series per
// metric; each point's `size` is the dataset ordinal 0=DBPEDIA, 1=YAGO,
// 2=LUBM and `avg_ms` carries the value — seconds for builds, MB for
// sizes).
//
// Extra knob: AMBER_BENCH_THREADS (default 1) runs the offline stage with
// AmberEngine::BuildOptions::num_threads workers; the built artifact is
// bit-identical to the single-threaded one (see amf_test).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace amber;
  using namespace amber::bench;

  BenchConfig config = BenchConfig::FromEnv();
  AmberEngine::BuildOptions build_options;
  if (const char* v = std::getenv("AMBER_BENCH_THREADS")) {
    build_options.num_threads = std::max(1, std::atoi(v));
  }
  std::printf(
      "Table 5: offline stage — database and index construction "
      "(scale %.2f, %d build threads)\n\n",
      config.scale, build_options.num_threads);
  std::printf("%-10s %16s %12s %16s %12s\n", "dataset", "db build (s)",
              "db size", "index build (s)", "index size");

  const std::vector<std::string> metric_names = {
      "db_build_s", "index_build_s", "db_size_mb", "index_size_mb"};
  std::vector<std::vector<SeriesPoint>> series(metric_names.size());

  const char* dataset_names[] = {"DBPEDIA", "YAGO", "LUBM"};
  for (int di = 0; di < 3; ++di) {
    const std::string name = dataset_names[di];
    DatasetBundle dataset = MakeDataset(name, config.scale);
    auto engine = AmberEngine::Build(dataset.triples, build_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    const AmberEngine::BuildTimings& t = engine->timings();
    const uint64_t db_size =
        engine->graph().ByteSize() + engine->dictionaries().ByteSize();
    const uint64_t index_size = engine->indexes().ByteSize();
    std::printf("%-10s %16.2f %12s %16.2f %12s\n", name.c_str(),
                t.database_seconds(), FormatBytes(db_size).c_str(),
                t.index_seconds, FormatBytes(index_size).c_str());

    auto point = [di](double value) {
      SeriesPoint p;
      p.size = di;
      p.avg_ms = value;
      p.answered = 1;
      p.total = 1;
      return p;
    };
    series[0].push_back(point(t.database_seconds()));
    series[1].push_back(point(t.index_seconds));
    series[2].push_back(point(db_size / 1e6));
    series[3].push_back(point(index_size / 1e6));
  }
  std::printf(
      "\nExpected shape (paper Table 5): build time and sizes proportional "
      "to triple/edge counts; index size same order as the database.\n");
  WriteSeriesJson("Table 5 offline", metric_names, series, config);
  return 0;
}
