// Closed-loop serving-throughput benchmark for the QueryService runtime
// (ROADMAP "query-serving runtime"; docs/BENCHMARKS.md "Throughput").
//
// N concurrent clients (swept over AMBER_BENCH_CLIENTS, default
// 1,2,4,8,16,32,64) each issue requests back-to-back for a fixed wall
// window, against three configurations at EQUAL per-query thread count:
//
//   service-pooled   QueryService with the cache bypassed: every request
//                    executes, borrowing helpers from the one persistent
//                    pool (ExecOptions::pool).
//   service-cached   QueryService with the plan/result cache on: the
//                    steady-state repeat-heavy serving mix.
//   per-query-spawn  The same service with ServiceOptions::share_pool off:
//                    a transient helper pool is spawned and torn down
//                    inside every single query (the pre-service behavior
//                    this runtime replaces). Identical normalization,
//                    admission and response assembly — the ONLY variable
//                    is the pool strategy.
//   service-streaming
//                    QueryStream at the same row cap (request.limit =
//                    AMBER_BENCH_MAX_ROWS): pages leave through a draining
//                    PageSink instead of materializing the response. Every
//                    point additionally reports peak_buffered_bytes — the
//                    high-water mark of the in-flight page across the
//                    whole window, the O(buffer) memory bound the
//                    streaming path claims. tools/bench_diff.py gates it
//                    with a ceiling (a streamed point ballooning toward
//                    O(result) memory is a regression even at equal qps).
//   service-http     The same cache-bypassed closed loop through the
//                    HTTP/1.1 transport (server/http_server.h): every
//                    request crosses a real loopback socket, the wire
//                    serializers, and the keep-alive request loop. The
//                    spread against service-pooled IS the transport tax
//                    (framing + JSON + syscalls), measured, not guessed.
//   service-degraded-<R>pct
//                    One series per AMBER_BENCH_FAULT_RATE entry: the
//                    cache-bypassed service under a seeded R% transient
//                    fault probability at the service.execute site, with
//                    deadline-aware retries (2, 1ms initial backoff) and
//                    overload shedding enabled. The robustness floor the
//                    gate defends: the runtime must keep answering —
//                    degraded qps, not a collapse to zero.
//
// A second, fixed-workload section measures BYTES ON THE WIRE: one
// star query per satellite count (2 / 4 / 6 extra satellite patterns over
// fanout-3 hubs) streamed over HTTP as rows and as factorized groups
// ("result_form":"groups"). The http-wire-rows / http-wire-groups series
// attach `bytes_on_wire` (total streamed payload bytes) to each point;
// tools/bench_diff.py gates groups-mode bytes with a ceiling — the
// factorized transport losing its compression (shipping the expanded
// cross-product again) is a regression even at equal qps.
//
// Reported per (series, clients) point: sustained qps plus p50/p99 request
// latency. Expected shape: service-pooled >= per-query-spawn on qps at
// every client count (pool spawn/teardown is pure overhead; parity on a
// 1-core host where T degenerates to 1), and service-cached far above
// both. Emits BENCH_throughput.json — the harness series schema with qps /
// p50_ms / p99_ms attached to every point; tools/bench_diff.py gates qps.
//
// Env knobs (bench_common.h): AMBER_BENCH_SCALE / _QUERIES / _TIMEOUT_MS /
// _SIZES / _EXEC_THREADS / _JSON_DIR, plus:
//   AMBER_BENCH_CLIENTS      comma list of client counts (default
//                            1,2,4,8,16,32,64)
//   AMBER_BENCH_DURATION_MS  measured window per point (default 1000)
//   AMBER_BENCH_MAX_ROWS     row cap per response, applied identically to
//                            every series (default 512). A serving mix
//                            returns bounded pages, not unbounded star
//                            joins; without the cap, row materialization
//                            drowns the pool-vs-spawn signal.
//   AMBER_BENCH_FAULT_RATE   comma list of transient-fault percentages for
//                            the service-degraded series (default 1,10;
//                            empty string disables the sweep).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.h"
#include "rdf/term.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_service.h"
#include "util/fault_injector.h"
#include "util/json.h"
#include "util/string_util.h"

namespace {

using namespace amber;
using namespace amber::bench;
using Clock = std::chrono::steady_clock;

/// One (series, clients) measurement.
struct ThroughputPoint {
  int clients = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double avg_ms = 0.0;
  int answered = 0;  // completed without timing out
  int total = 0;     // requests issued
  // Streaming series only: max StreamResponse::peak_buffered_bytes seen
  // across the window — the in-flight-page high-water mark. 0 elsewhere.
  uint64_t peak_buffered_bytes = 0;
  // Wire series only: total streamed payload bytes. 0 elsewhere.
  uint64_t bytes_on_wire = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

/// Runs `clients` closed-loop client threads for `window`; `issue` answers
/// one request for query index `qi` and returns false on timeout.
ThroughputPoint RunPoint(int clients, std::chrono::milliseconds window,
                         size_t num_queries,
                         const std::function<bool(size_t)>& issue) {
  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<int> answered{0};
  std::atomic<int> total{0};

  const auto start = Clock::now();
  const auto stop = start + window;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local;
      size_t qi = static_cast<size_t>(c);  // stagger the query mix
      while (Clock::now() < stop) {
        const auto t0 = Clock::now();
        const bool ok = issue(qi % num_queries);
        const auto t1 = Clock::now();
        ++total;
        if (ok) ++answered;
        local.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        ++qi;
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  ThroughputPoint point;
  point.clients = clients;
  point.total = total.load();
  point.answered = answered.load();
  point.qps = elapsed_s > 0 ? point.total / elapsed_s : 0.0;
  std::sort(latencies.begin(), latencies.end());
  point.p50_ms = Percentile(latencies, 0.50);
  point.p99_ms = Percentile(latencies, 0.99);
  double sum = 0;
  for (double v : latencies) sum += v;
  point.avg_ms = latencies.empty() ? 0.0 : sum / latencies.size();
  return point;
}

/// BENCH_throughput.json: the harness series schema ("size" = client
/// count) with qps / p50_ms / p99_ms attached to every point.
void WriteThroughputJson(
    const std::vector<std::string>& names,
    const std::vector<std::vector<ThroughputPoint>>& series,
    const BenchConfig& config) {
  const char* dir = std::getenv("AMBER_BENCH_JSON_DIR");
  if (!dir || !*dir) return;
  const std::string path = std::string(dir) + "/BENCH_throughput.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"figure\": \"Throughput\",\n";
  os << "  \"config\": {\"scale\": " << config.scale
     << ", \"queries_per_point\": " << config.queries_per_point
     << ", \"timeout_ms\": " << config.timeout_ms << "},\n";
  os << "  \"engines\": [\n";
  for (size_t e = 0; e < names.size(); ++e) {
    os << "    {\"name\": \"" << names[e] << "\", \"series\": [";
    for (size_t i = 0; i < series[e].size(); ++i) {
      const ThroughputPoint& p = series[e][i];
      const double unanswered =
          100.0 * (p.total - p.answered) / std::max(1, p.total);
      os << (i ? ", " : "") << "{\"size\": " << p.clients
         << ", \"avg_ms\": " << p.avg_ms
         << ", \"unanswered_pct\": " << unanswered
         << ", \"answered\": " << p.answered << ", \"total\": " << p.total
         << ", \"qps\": " << p.qps << ", \"p50_ms\": " << p.p50_ms
         << ", \"p99_ms\": " << p.p99_ms
         << ", \"peak_buffered_bytes\": " << p.peak_buffered_bytes
         << ", \"bytes_on_wire\": " << p.bytes_on_wire << "}";
    }
    os << "]}" << (e + 1 < names.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::FromEnv();
  // Throughput defaults (overridable by the usual env knobs): small fast
  // queries — a serving mix, not the paper's heavyweight figure shapes —
  // and 2 online threads per query so pool reuse actually has helpers to
  // hand out.
  if (std::getenv("AMBER_BENCH_SIZES") == nullptr) config.sizes = {4, 6};
  if (std::getenv("AMBER_BENCH_EXEC_THREADS") == nullptr)
    config.exec_threads = 2;

  std::vector<int> client_counts = {1, 2, 4, 8, 16, 32, 64};
  if (const char* env = std::getenv("AMBER_BENCH_CLIENTS")) {
    client_counts.clear();
    for (std::string_view piece : StrSplit(env, ',')) {
      int v = std::atoi(std::string(piece).c_str());
      if (v > 0) client_counts.push_back(v);
    }
    if (client_counts.empty()) client_counts = {4};
  }
  std::chrono::milliseconds window(1000);
  if (const char* env = std::getenv("AMBER_BENCH_DURATION_MS")) {
    const int v = std::atoi(env);
    if (v > 0) window = std::chrono::milliseconds(v);
  }
  uint64_t max_rows = 512;
  if (const char* env = std::getenv("AMBER_BENCH_MAX_ROWS")) {
    const int v = std::atoi(env);
    if (v > 0) max_rows = static_cast<uint64_t>(v);
  }
  std::vector<int> fault_rates = {1, 10};
  if (const char* env = std::getenv("AMBER_BENCH_FAULT_RATE")) {
    fault_rates.clear();  // empty string disables the sweep
    for (std::string_view piece : StrSplit(env, ',')) {
      const int v = std::atoi(std::string(piece).c_str());
      if (v >= 0 && v <= 100) fault_rates.push_back(v);
    }
  }

  DatasetBundle dataset = MakeDataset("LUBM", config.scale);
  std::fprintf(stderr,
               "[Throughput] dataset: %zu triples, %d exec threads/query, "
               "%lld ms/point\n",
               dataset.triples.size(), config.exec_threads,
               static_cast<long long>(window.count()));
  auto built = AmberEngine::Build(dataset.triples);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  AmberEngine engine = std::move(built).value();

  // One flat pool of query texts drawn from the per-size workloads.
  std::vector<std::string> queries;
  for (auto& sized : MakeWorkloads(dataset, QueryShape::kStar, config)) {
    for (auto& q : sized) queries.push_back(std::move(q));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries generated\n");
    return 1;
  }

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int max_clients =
      *std::max_element(client_counts.begin(), client_counts.end());
  ServiceOptions service_options;
  service_options.pool_threads =
      std::clamp(hw > 0 ? hw - 1 : 1, 1, 16);
  service_options.max_in_flight = max_clients;  // admission never rejects
  service_options.max_queued = max_clients;
  service_options.default_thread_budget = config.exec_threads;
  service_options.max_thread_budget = config.exec_threads;
  service_options.cache_entries = 2 * queries.size();
  service_options.max_result_rows = max_rows;
  service_options.default_deadline =
      std::chrono::milliseconds(config.timeout_ms);

  std::vector<std::string> names = {"service-pooled", "service-cached",
                                    "per-query-spawn", "service-streaming",
                                    "service-http"};
  for (int rate : fault_rates) {
    names.push_back("service-degraded-" + std::to_string(rate) + "pct");
  }
  std::vector<std::vector<ThroughputPoint>> series(names.size());

  for (int clients : client_counts) {
    std::fprintf(stderr, "  %d clients...\n", clients);

    {  // service-pooled: every request executes on the persistent pool.
      QueryService service(&engine, service_options);
      series[0].push_back(RunPoint(clients, window, queries.size(),
                                   [&](size_t qi) {
                                     RequestOptions req;
                                     req.bypass_cache = true;
                                     auto resp =
                                         service.Query(queries[qi], req);
                                     return resp.ok() && !resp->timed_out;
                                   }));
    }
    {  // service-cached: the repeat-heavy steady state.
      QueryService service(&engine, service_options);
      series[1].push_back(RunPoint(clients, window, queries.size(),
                                   [&](size_t qi) {
                                     auto resp = service.Query(queries[qi]);
                                     return resp.ok() && !resp->timed_out;
                                   }));
    }
    {  // per-query-spawn: a transient helper pool inside every query.
      ServiceOptions spawn_options = service_options;
      spawn_options.share_pool = false;
      QueryService service(&engine, spawn_options);
      series[2].push_back(RunPoint(clients, window, queries.size(),
                                   [&](size_t qi) {
                                     RequestOptions req;
                                     req.bypass_cache = true;
                                     auto resp =
                                         service.Query(queries[qi], req);
                                     return resp.ok() && !resp->timed_out;
                                   }));
    }
    {  // service-streaming: QueryStream at the same row cap; pages drain
       // through a no-op sink, so the point measures the streaming path's
       // pipeline cost plus its bounded-buffer memory high-water mark.
      QueryService service(&engine, service_options);
      struct DrainSink : PageSink {
        bool OnPage(StreamPage&&) override { return true; }
      };
      std::atomic<uint64_t> peak_bytes{0};
      ThroughputPoint point = RunPoint(
          clients, window, queries.size(), [&](size_t qi) {
            DrainSink sink;
            RequestOptions req;
            req.limit = max_rows;  // cap-comparable to the other series
            auto resp = service.QueryStream(queries[qi], req, &sink);
            if (!resp.ok()) return false;
            uint64_t seen = peak_bytes.load(std::memory_order_relaxed);
            while (resp->peak_buffered_bytes > seen &&
                   !peak_bytes.compare_exchange_weak(
                       seen, resp->peak_buffered_bytes,
                       std::memory_order_relaxed)) {
            }
            return resp->complete;
          });
      point.peak_buffered_bytes = peak_bytes.load();
      series[3].push_back(point);
    }
    {  // service-http: the same closed loop through the loopback HTTP
       // transport. Connection handlers park on the service pool, so the
       // pool is sized to the client count plus the spare worker the
       // capacity invariant requires; budget 1 (no borrowed helpers).
      ServiceOptions http_options = service_options;
      http_options.pool_threads = clients + 1;
      http_options.default_thread_budget = 1;
      http_options.max_thread_budget = 1;
      QueryService service(&engine, http_options);
      HttpServer server(&service);
      if (Status s = server.Start(); !s.ok()) {
        std::fprintf(stderr, "http server: %s\n", s.ToString().c_str());
        series[4].push_back(ThroughputPoint{clients});
      } else {
        const uint16_t port = server.port();
        series[4].push_back(RunPoint(
            clients, window, queries.size(), [&, port](size_t qi) {
              // One keep-alive client per closed-loop thread (threads are
              // per-point, so so are the connections).
              thread_local std::unique_ptr<HttpClient> client;
              thread_local uint16_t client_port = 0;
              if (!client || client_port != port) {
                client = std::make_unique<HttpClient>(port);
                client_port = port;
              }
              json::Writer w;
              w.BeginObject();
              w.KV("query", queries[qi]);
              w.KV("limit", max_rows);
              w.KV("bypass_cache", true);
              w.EndObject();
              auto resp = client->Post("/query", w.Take());
              if (!resp.ok()) client->Close();
              return resp.ok() && resp->status == 200;
            }));
        server.Stop();
      }
    }
    for (size_t f = 0; f < fault_rates.size(); ++f) {
      // service-degraded: the cache-bypassed service under a seeded R%
      // transient fault probability at service.execute, with retries and
      // shedding on. "answered" here counts requests that survived the
      // faults — the robustness floor the diff gate defends.
      ServiceOptions degraded = service_options;
      degraded.max_retries = 2;
      degraded.initial_backoff = std::chrono::milliseconds(1);
      degraded.shed_high_water = std::max(1, clients / 2);
      QueryService service(&engine, degraded);
      std::optional<ScopedFault> fault;
      if (fault_rates[f] > 0) {
        FaultSpec spec;  // default code kUnavailable: retryable
        spec.probability = fault_rates[f] / 100.0;
        spec.seed = 1000u * static_cast<uint64_t>(clients) + f;
        fault.emplace(faults::kServiceExecute, spec);
      }
      series[5 + f].push_back(RunPoint(clients, window, queries.size(),
                                       [&](size_t qi) {
                                         RequestOptions req;
                                         req.bypass_cache = true;
                                         auto resp =
                                             service.Query(queries[qi], req);
                                         return resp.ok() && !resp->timed_out;
                                       }));
    }
  }

  std::printf("\nServing throughput (closed loop, %zu-query star mix, "
              "%d online threads/query)\n",
              queries.size(), config.exec_threads);
  std::printf("%-10s", "clients");
  for (const std::string& n : names) {
    std::printf("  %16s", (n + " qps").c_str());
  }
  std::printf("  %12s  %12s\n", "pooled p50", "pooled p99");
  for (size_t i = 0; i < client_counts.size(); ++i) {
    std::printf("%-10d", client_counts[i]);
    for (const auto& s : series) {
      std::printf("  %16.1f", s[i].qps);
    }
    std::printf("  %10.3fms  %10.3fms\n", series[0][i].p50_ms,
                series[0][i].p99_ms);
  }
  std::printf("\nExpected shape: service-pooled >= per-query-spawn at every "
              "client count (pool spawn is pure overhead; parity on a "
              "1-core host), service-cached far above both, "
              "service-streaming near service-pooled qps with "
              "peak_buffered_bytes bounded by the page buffer, and every "
              "service-degraded series still answering (reduced qps, "
              "never zero).\n");
  if (!series[3].empty()) {
    uint64_t high = 0;
    for (const auto& p : series[3]) {
      high = std::max(high, p.peak_buffered_bytes);
    }
    std::printf("service-streaming peak buffered bytes (max over points): "
                "%llu\n",
                static_cast<unsigned long long>(high));
  }

  // ---- Bytes on the wire: rows vs factorized groups ----------------------
  // A fixed synthetic star workload (fanout-3 hubs, k satellite patterns)
  // streamed over HTTP in both result forms. "size" = satellite count k;
  // rows mode ships 3^k rows per hub, groups mode ships one group of k
  // short lists — the compression the factorized transport claims.
  {
    std::vector<Triple> star;
    for (int h = 0; h < 6; ++h) {
      Term hub = Term::Iri("urn:hub" + std::to_string(h));
      for (int s = 0; s < 3; ++s) {
        star.emplace_back(hub, Term::Iri("urn:p0"),
                          Term::Iri("urn:hub" + std::to_string(h) + "sat" +
                                    std::to_string(s)));
      }
    }
    auto star_built = AmberEngine::Build(star);
    if (star_built.ok()) {
      AmberEngine star_engine = std::move(star_built).value();
      ServiceOptions wire_options;
      wire_options.pool_threads = 4;
      QueryService service(&star_engine, wire_options);
      HttpServer server(&service);
      if (Status s = server.Start(); s.ok()) {
        HttpClient client(server.port());
        std::vector<ThroughputPoint> rows_points, groups_points;
        std::printf("\nBytes on the wire, rows vs groups (star query, "
                    "fanout-3 hubs)\n%-12s  %12s  %14s  %8s\n",
                    "satellites", "rows bytes", "groups bytes", "ratio");
        for (int sats : {2, 4, 6}) {
          std::string q = "SELECT ?h";
          for (int i = 0; i < sats; ++i) q += " ?s" + std::to_string(i);
          q += " WHERE {";
          for (int i = 0; i < sats; ++i) {
            q += " ?h <urn:p0> ?s" + std::to_string(i) + " .";
          }
          q += " }";
          uint64_t form_bytes[2] = {0, 0};
          for (int form = 0; form < 2; ++form) {  // 0 = rows, 1 = groups
            json::Writer w;
            w.BeginObject();
            w.KV("query", q);
            w.KV("bypass_cache", true);
            if (form == 1) w.KV("result_form", "groups");
            w.EndObject();
            const auto t0 = Clock::now();
            auto resp = client.PostStream("/query/stream", w.Take(),
                                          [](std::string_view) {
                                            return true;
                                          });
            const double ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - t0)
                                  .count();
            ThroughputPoint point;
            point.clients = sats;  // "size" axis = satellite count
            point.total = 1;
            point.avg_ms = point.p50_ms = point.p99_ms = ms;
            if (resp.ok() && resp->status == 200 &&
                resp->chunked_complete) {
              point.answered = 1;
              point.bytes_on_wire = resp->body.size();
            }
            form_bytes[form] = point.bytes_on_wire;
            (form == 0 ? rows_points : groups_points).push_back(point);
          }
          std::printf("%-12d  %12llu  %14llu  %7.1fx\n", sats,
                      static_cast<unsigned long long>(form_bytes[0]),
                      static_cast<unsigned long long>(form_bytes[1]),
                      form_bytes[1] > 0
                          ? static_cast<double>(form_bytes[0]) /
                                static_cast<double>(form_bytes[1])
                          : 0.0);
        }
        server.Stop();
        names.push_back("http-wire-rows");
        series.push_back(std::move(rows_points));
        names.push_back("http-wire-groups");
        series.push_back(std::move(groups_points));
      } else {
        std::fprintf(stderr, "wire section: %s\n", s.ToString().c_str());
      }
    }
  }
  std::fflush(stdout);

  WriteThroughputJson(names, series, config);
  return 0;
}
